#include "bench/loadgen_core.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/table.h"
#include "kvstore/messages.h"

namespace amcast::bench {

namespace {

/// Reaper granularity: expired entries are detected within a quarter of the
/// op timeout (bounded below so a tiny test timeout doesn't busy-tick).
Duration reaper_interval(Duration op_timeout) {
  return std::max<Duration>(op_timeout / 4, duration::milliseconds(20));
}

}  // namespace

LoadGenClient::LoadGenClient(core::ConfigRegistry& registry,
                             kvstore::Partitioner partitioner,
                             std::vector<GroupId> partition_groups,
                             LoadGenOptions opts)
    : core::MulticastNode(registry),
      opts_(std::move(opts)),
      partitioner_(std::move(partitioner)),
      pgroups_(std::move(partition_groups)),
      rng_(opts_.seed ^ 0x6c6f616467656e31ULL),
      schedule_(opts_.seed ^ 0x6c6f616467656e32ULL) {
  AMCAST_ASSERT(opts_.sessions > 0);
  AMCAST_ASSERT(opts_.key_count > 0);
  AMCAST_ASSERT(!pgroups_.empty());
  if (opts_.key_dist == "zipfian") {
    zipf_ = std::make_unique<ScrambledZipfianGenerator>(opts_.key_count);
  }
  // Replicas dedup re-proposed writes by (client, thread, seq). Session
  // thread ids are 0..sessions-1 in every loadgen invocation, so the
  // per-session sequence starts at the wall-clock microsecond count: each
  // invocation's sequences are strictly above the previous one's (per
  // session, sequences advance far slower than 1e6/s), so a fresh run's
  // writes can never look like duplicates of an earlier run's. Same
  // reasoning as amcast_kv's CliClient.
  auto base = std::uint64_t(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  session_seq_.assign(std::size_t(opts_.sessions), base);
}

LoadGenClient::~LoadGenClient() = default;

void LoadGenClient::on_start() {
  core::MulticastNode::on_start();
  reaper_ = set_periodic(reaper_interval(opts_.op_timeout),
                         [this] { reap_expired(); });
}

std::string LoadGenClient::key_name(std::uint64_t k) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%010llu", (unsigned long long)k);
  return buf;
}

std::uint64_t LoadGenClient::next_key() {
  return zipf_ ? zipf_->next(rng_) : rng_.next_u64(opts_.key_count);
}

kvstore::Command LoadGenClient::next_command(std::uint64_t* key_index) {
  kvstore::Command c;
  *key_index = next_key();
  c.key = key_name(*key_index);
  if (rng_.next_bool(opts_.get_ratio)) {
    c.op = kvstore::Op::kRead;
  } else {
    c.op = kvstore::Op::kInsert;  // MRP-Store insert is an upsert
    c.value.assign(opts_.value_bytes, std::uint8_t('a' + *key_index % 26));
  }
  return c;
}

void LoadGenClient::issue(Time intended, kvstore::Command c,
                          std::uint64_t key_index, bool preload) {
  std::int32_t session =
      std::int32_t(next_session_++ % std::int64_t(opts_.sessions));
  c.client = id();
  c.thread = session;
  c.seq = ++session_seq_[std::size_t(session)];

  kvstore::CommandBatch batch;
  batch.commands.push_back(c);
  int p = partitioner_.locate(c.key);
  MessageId mid = multicast_bytes(pgroups_[std::size_t(p)], batch.encode());

  Pending pend;
  pend.intended = intended;
  pend.mid = mid;
  pend.key_index = key_index;
  pend.preload = preload;
  {
    MutexLock l(&stats_mu_);
    pend.measured = !preload && window_active_ && intended >= window_start_ &&
                    intended < window_end_;
    if (pend.measured) {
      ++measured_issued_;
      ++measured_outstanding_;
    }
    ++issued_;
  }
  outstanding_[{session, c.seq}] = pend;
}

void LoadGenClient::set_rate(double offered_per_s) {
  ++load_epoch_;  // stale arrival timers become no-ops
  if (offered_per_s <= 0) {
    load_active_ = false;
    return;
  }
  load_active_ = true;
  schedule_.reset(offered_per_s, now());
  next_arrival_ = schedule_.next();
  fire_arrivals();
}

void LoadGenClient::fire_arrivals() {
  if (!load_active_) return;
  // Issue every arrival the schedule owes up to now — a late wakeup issues
  // the backlog in one burst, each request keeping its INTENDED timestamp
  // (coordinated omission: the wait it already suffered counts as latency).
  // The burst is capped per wakeup: the schedule runs on the real clock, so
  // when the offered rate exceeds what this client can ISSUE, an uncapped
  // loop would never catch up to now() and the event loop would stop
  // polling IO entirely. The zero-delay re-arm keeps the remaining debt on
  // the books with intended times intact.
  constexpr int kMaxBurst = 512;
  int burst = 0;
  while (next_arrival_ <= now() && burst < kMaxBurst) {
    std::uint64_t key_index = 0;
    kvstore::Command c = next_command(&key_index);
    issue(next_arrival_, std::move(c), key_index, /*preload=*/false);
    next_arrival_ = schedule_.next();
    ++burst;
  }
  arm_arrival_timer();
}

void LoadGenClient::arm_arrival_timer() {
  std::uint64_t epoch = load_epoch_;
  Duration wait = std::max<Duration>(0, next_arrival_ - now());
  set_timer(wait, [this, epoch] {
    if (epoch == load_epoch_) fire_arrivals();
  });
}

void LoadGenClient::begin_window(Duration window) {
  MutexLock l(&stats_mu_);
  window_active_ = true;
  window_start_ = now();
  window_end_ = window_start_ + window;
  latency_.clear();
  window_completed_ = 0;
  measured_issued_ = 0;
  measured_timeouts_ = 0;
  // Leftover measured entries from a previous window (not drained) must not
  // pollute this one's histogram or its drain accounting.
  for (auto& [k, p] : outstanding_) {
    if (p.measured) {
      p.measured = false;
      --measured_outstanding_;
    }
  }
  AMCAST_ASSERT(measured_outstanding_ == 0);
}

void LoadGenClient::complete(std::map<OpKey, Pending>::iterator it) {
  Pending p = it->second;
  outstanding_.erase(it);
  clear_proposal(p.mid);
  Time t = now();
  {
    MutexLock l(&stats_mu_);
    ++completed_total_;
    if (window_end_ > 0 && t >= window_start_ && t < window_end_) {
      ++window_completed_;
    }
    if (p.measured) {
      latency_.record(t - p.intended);
      --measured_outstanding_;
    }
  }
  if (p.preload) {
    --preload_remaining_;
    issue_next_preload();
  }
}

void LoadGenClient::on_message(ProcessId from, const env::MessagePtr& m) {
  if (m->type() != kvstore::kKvResponse) {
    core::MulticastNode::on_message(from, m);
    return;
  }
  const auto& resp = env::msg_cast<kvstore::KvResponseMsg>(m);
  for (const auto& r : resp.results) {
    // Every replica of the partition answers; the first response completes
    // the op and later copies find nothing here. Single-key ops only, so
    // one partition's answer is always the whole answer.
    auto it = outstanding_.find({r.thread, r.seq});
    if (it != outstanding_.end()) complete(it);
  }
}

void LoadGenClient::reap_expired() {
  Time deadline = now() - opts_.op_timeout;
  std::vector<Pending> expired_preloads;
  for (auto it = outstanding_.begin(); it != outstanding_.end();) {
    if (it->second.intended > deadline) {
      ++it;
      continue;
    }
    Pending p = it->second;
    it = outstanding_.erase(it);
    clear_proposal(p.mid);
    {
      MutexLock l(&stats_mu_);
      ++timeouts_total_;
      if (p.measured) {
        ++measured_timeouts_;
        --measured_outstanding_;
      }
    }
    if (p.preload) expired_preloads.push_back(p);
  }
  // Preload inserts must all land (the sweep reads these keys): retry the
  // same key until it sticks.
  for (const Pending& p : expired_preloads) {
    kvstore::Command c;
    c.op = kvstore::Op::kInsert;
    c.key = key_name(p.key_index);
    c.value.assign(opts_.value_bytes, std::uint8_t('a' + p.key_index % 26));
    issue(now(), std::move(c), p.key_index, /*preload=*/true);
  }
}

void LoadGenClient::start_preload(int pipeline) {
  AMCAST_ASSERT(pipeline > 0);
  preload_remaining_ = std::int64_t(opts_.key_count);
  preload_next_key_ = 0;
  preload_pipeline_ = pipeline;
  std::int64_t first =
      std::min<std::int64_t>(pipeline, std::int64_t(opts_.key_count));
  for (std::int64_t i = 0; i < first; ++i) issue_next_preload();
}

void LoadGenClient::issue_next_preload() {
  if (preload_next_key_ >= opts_.key_count) return;
  std::uint64_t k = preload_next_key_++;
  kvstore::Command c;
  c.op = kvstore::Op::kInsert;
  c.key = key_name(k);
  c.value.assign(opts_.value_bytes, std::uint8_t('a' + k % 26));
  issue(now(), std::move(c), k, /*preload=*/true);
}

RatePoint LoadGenClient::take_point() const {
  MutexLock l(&stats_mu_);
  RatePoint p;
  p.offered_rate = schedule_.rate();
  p.window_s = duration::to_seconds(window_end_ - window_start_);
  p.completed = window_completed_;
  p.goodput = p.window_s > 0 ? double(window_completed_) / p.window_s : 0;
  p.measured = measured_issued_;
  p.timeouts = measured_timeouts_;
  p.latency = latency_;
  return p;
}

ScenarioResult make_runtime_row(const std::string& name, int rings,
                                int threads, const LoadGenOptions& opts,
                                const RatePoint& point, std::uint64_t seed,
                                double wall_s) {
  ScenarioResult row;
  row.name = name;
  row.seed = seed;
  row.params.set("rings", rings);
  // Only multithreaded rows carry the param: gate keys concatenate every
  // param, so labeling threads=1 would orphan all pre-sharding baselines.
  if (threads != 1) row.params.set("threads", threads);
  row.params.set("offered_rate", point.offered_rate);
  row.params.set("sessions", opts.sessions);
  row.params.set("get_ratio", opts.get_ratio);
  row.params.set("value_bytes", std::uint64_t(opts.value_bytes));
  row.params.set("key_dist", opts.key_dist);
  row.metrics.set("offered_rate", point.offered_rate);
  row.metrics.set("goodput", point.goodput);
  set_latency_metrics(row.metrics, point.latency);
  row.metrics.set("timeouts", point.timeouts);
  row.metrics.set("completed", point.completed);
  row.metrics.set("measured", point.measured);
  row.metrics.set("window_s", point.window_s);
  row.metrics.set("wall_s", wall_s);
  return row;
}

namespace {

/// (rings, threads, offered_rate, goodput) tuple of one runtime scenario
/// row. threads defaults to 1: single-threaded rows omit the param.
struct GatePoint {
  const json::Value* row = nullptr;
  std::string key;
  std::string name;
  int rings = 0;
  int threads = 1;
  double offered = 0;
  double goodput = 0;
};

std::string gate_row_key(const json::Value& row) {
  const json::Value* name = row.find("name");
  std::string key = name ? name->as_string() : "(unnamed)";
  if (const json::Value* params = row.find("params")) {
    for (const auto& [k, v] : params->members()) {
      key += " " + k + "=";
      key += v.is_string() ? v.as_string() : std::to_string(v.as_number());
    }
  }
  return key;
}

std::vector<GatePoint> gate_points(const json::Value& doc) {
  std::vector<GatePoint> out;
  const json::Value* rows = doc.find("scenarios");
  if (rows == nullptr || !rows->is_array()) return out;
  for (const auto& row : rows->items()) {
    GatePoint p;
    p.row = &row;
    p.key = gate_row_key(row);
    if (const json::Value* n = row.find("name")) p.name = n->as_string();
    const json::Value* params = row.find("params");
    const json::Value* metrics = row.find("metrics");
    if (params != nullptr) {
      if (const auto* r = params->find("rings")) p.rings = int(r->as_number());
      if (const auto* t = params->find("threads")) {
        p.threads = int(t->as_number());
      }
      if (const auto* r = params->find("offered_rate")) {
        p.offered = r->as_number();
      }
    }
    if (metrics != nullptr) {
      if (const auto* g = metrics->find("goodput")) p.goodput = g->as_number();
    }
    out.push_back(std::move(p));
  }
  return out;
}

/// Peak goodput at `rings` over single-threaded (threads == 1) or
/// multithreaded (threads > 1) points; -1 when no point matches.
double max_goodput(const std::vector<GatePoint>& pts, int rings,
                   bool multithreaded) {
  double best = -1;
  for (const auto& p : pts) {
    if (p.rings != rings) continue;
    if (multithreaded ? p.threads <= 1 : p.threads != 1) continue;
    best = std::max(best, p.goodput);
  }
  return best;
}

}  // namespace

int gate_runtime_report(const json::Value& current, const json::Value* baseline,
                        const RuntimeGateOptions& opts) {
  std::vector<GatePoint> pts = gate_points(current);
  if (pts.empty()) {
    std::printf("runtime gate: FAIL (no scenario rows)\n");
    return 1;
  }
  int failures = 0;

  // --- baseline comparison (per-point goodput, wide two-sided gate) -------
  if (baseline != nullptr) {
    std::vector<GatePoint> base = gate_points(*baseline);
    TextTable t({"point", "baseline", "current", "delta", "verdict"});
    std::size_t matched = 0;
    for (const auto& p : pts) {
      const GatePoint* b = nullptr;
      for (const auto& bp : base) {
        if (bp.key == p.key) {
          b = &bp;
          break;
        }
      }
      std::string label = "rings=" + std::to_string(p.rings) +
                          " offered=" + TextTable::num(p.offered, 0);
      if (b == nullptr) {
        t.add_row({label, "-", TextTable::num(p.goodput, 0), "-",
                   "NEW (not gated)"});
        continue;
      }
      ++matched;
      double delta =
          b->goodput > 0 ? (p.goodput - b->goodput) / b->goodput : 0;
      bool ok = b->goodput <= 0 ||
                (p.goodput >= b->goodput * (1 - opts.tolerance) &&
                 p.goodput <= b->goodput * (1 + opts.tolerance));
      if (!ok) ++failures;
      t.add_row({label, TextTable::num(b->goodput, 0),
                 TextTable::num(p.goodput, 0),
                 TextTable::num(delta * 100, 1) + "%", ok ? "ok" : "FAIL"});
    }
    t.print("runtime goodput vs baseline (tolerance +/-" +
            TextTable::num(opts.tolerance * 100, 0) + "%)");
    if (matched == 0) {
      std::printf("runtime gate: FAIL (no current point matched the "
                  "baseline)\n");
      ++failures;
    }
  }

  // --- fig3 shape: goodput tracks offered load, then saturates without ----
  // collapsing. Checked per (ring count, threads) sweep — a multicore
  // cluster's points form their own curve, never mixed into the
  // single-threaded one — over points in ascending offered rate.
  // Thresholds are deliberately loose — shared-machine wall clock.
  std::vector<int> ring_counts;
  std::vector<std::pair<int, int>> sweeps;  ///< distinct (rings, threads)
  for (const auto& p : pts) {
    if (std::find(ring_counts.begin(), ring_counts.end(), p.rings) ==
        ring_counts.end()) {
      ring_counts.push_back(p.rings);
    }
    std::pair<int, int> s{p.rings, p.threads};
    if (std::find(sweeps.begin(), sweeps.end(), s) == sweeps.end()) {
      sweeps.push_back(s);
    }
  }
  std::sort(ring_counts.begin(), ring_counts.end());
  std::sort(sweeps.begin(), sweeps.end());
  bool saturated_somewhere = false;
  for (auto [rings, threads] : sweeps) {
    std::vector<GatePoint> group;
    for (const auto& p : pts) {
      if (p.rings == rings && p.threads == threads) group.push_back(p);
    }
    std::sort(group.begin(), group.end(),
              [](const GatePoint& a, const GatePoint& b) {
                return a.offered < b.offered;
              });
    std::string label = "rings=" + std::to_string(rings);
    if (threads != 1) label += " threads=" + std::to_string(threads);
    // Below the knee the cluster must keep up with the offered rate.
    const GatePoint& lo = group.front();
    if (lo.goodput < 0.7 * lo.offered) {
      std::printf("fig3 shape: FAIL %s lowest point (offered=%.0f) "
                  "goodput=%.0f < 70%% of offered\n",
                  label.c_str(), lo.offered, lo.goodput);
      ++failures;
    }
    // Past the knee goodput may flatten but must not collapse.
    double running_max = 0;
    for (const auto& p : group) {
      running_max = std::max(running_max, p.goodput);
      if (p.goodput < 0.5 * running_max) {
        std::printf("fig3 shape: FAIL %s offered=%.0f goodput=%.0f "
                    "collapsed below 50%% of earlier max %.0f\n",
                    label.c_str(), p.offered, p.goodput, running_max);
        ++failures;
      }
    }
    const GatePoint& hi = group.back();
    if (hi.goodput < 0.9 * hi.offered) saturated_somewhere = true;
    std::printf("fig3 shape: %s points=%zu peak_goodput=%.0f/s "
                "top_point=%.0f/%.0f %s\n",
                label.c_str(), group.size(), running_max, hi.goodput,
                hi.offered,
                hi.goodput < 0.9 * hi.offered ? "(saturated)"
                                              : "(keeping up)");
  }
  if (opts.require_saturation && !saturated_somewhere) {
    std::printf("fig3 shape: FAIL sweep never saturated — raise the top "
                "offered rate\n");
    ++failures;
  }

  // --- fig7 shape: rings scale horizontally (single-threaded sweeps ------
  // only: the multicore leg varies threads at a fixed ring count and has
  // its own gate below).
  if (opts.require_scaling) {
    double g1 = max_goodput(pts, 1, /*multithreaded=*/false);
    double g2 = max_goodput(pts, 2, /*multithreaded=*/false);
    if (g1 < 0 || g2 < 0) {
      std::printf("fig7 shape: FAIL need both 1-ring and 2-ring sweeps\n");
      ++failures;
    } else if (g2 < 1.15 * g1) {
      std::printf("fig7 shape: FAIL 2-ring peak %.0f/s is not >=1.15x the "
                  "1-ring peak %.0f/s\n",
                  g2, g1);
      ++failures;
    } else {
      std::printf("fig7 shape: ok 2-ring peak %.0f/s = %.2fx 1-ring peak "
                  "%.0f/s\n",
                  g2, g2 / g1, g1);
    }
    for (std::size_t i = 2; i < ring_counts.size(); ++i) {
      double prev =
          max_goodput(pts, ring_counts[i - 1], /*multithreaded=*/false);
      double cur = max_goodput(pts, ring_counts[i], /*multithreaded=*/false);
      std::printf("fig7 shape: info %d->%d rings peak %.0f -> %.0f/s "
                  "(%.2fx)\n",
                  ring_counts[i - 1], ring_counts[i], prev, cur,
                  prev > 0 ? cur / prev : 0);
    }
  }

  // --- multicore: thread-per-ring sharding must buy real throughput ------
  // Compared within one scenario name at one ring count, so the colocated
  // leg's 1-thread run is measured against its OWN sharded run — never
  // against the multi-process sweep that happens to share a ring count.
  if (opts.require_multicore_speedup > 0) {
    bool compared = false;
    std::vector<std::pair<std::string, int>> groups;
    for (const auto& p : pts) {
      std::pair<std::string, int> g{p.name, p.rings};
      if (std::find(groups.begin(), groups.end(), g) == groups.end()) {
        groups.push_back(g);
      }
    }
    std::sort(groups.begin(), groups.end());
    for (const auto& [gname, rings] : groups) {
      double single = -1, multi = -1;
      for (const auto& p : pts) {
        if (p.name != gname || p.rings != rings) continue;
        (p.threads > 1 ? multi : single) =
            std::max(p.threads > 1 ? multi : single, p.goodput);
      }
      if (single < 0 || multi < 0) continue;  // need both sweeps to compare
      compared = true;
      bool ok = single > 0 && multi >= opts.require_multicore_speedup * single;
      if (!ok) ++failures;
      std::printf("multicore: %s %s rings=%d sharded peak %.0f/s = %.2fx "
                  "single-thread peak %.0f/s (need >=%.2fx)\n",
                  ok ? "ok" : "FAIL", gname.c_str(), rings, multi,
                  single > 0 ? multi / single : 0, single,
                  opts.require_multicore_speedup);
    }
    if (!compared) {
      std::printf("multicore: FAIL no scenario was measured at both "
                  "threads=1 and threads>1\n");
      ++failures;
    }
  }

  std::printf("runtime gate: %s (%d failure%s)\n",
              failures == 0 ? "PASS" : "FAIL", failures,
              failures == 1 ? "" : "s");
  return failures == 0 ? 0 : 1;
}

}  // namespace amcast::bench
