// Unified performance suite: runs the scenario matrix (bench/scenarios.h)
// under one measurement protocol and emits a machine-readable
// BENCH_perf.json (schema in bench/bench_util.h).
//
//   perf_suite                         # full matrix -> BENCH_perf.json
//   perf_suite --smoke                 # reduced CI matrix (< 2 min)
//   perf_suite --out FILE              # artifact path
//   perf_suite --scenario NAME         # one scenario only
//   perf_suite --seed N                # base sim seed (default 42)
//   perf_suite --compare BASELINE      # CI perf gate: per-scenario delta
//                                      # table vs the committed baseline,
//                                      # fails when rate_per_s moves > 25%
//   perf_suite --tolerance PCT        # override the gate tolerance
//   perf_suite --list                  # print the scenario catalogue
//
// The gate compares only sim-domain throughput (rate_per_s), which is
// deterministic for a seed; wall_s is host-dependent and never gated. The
// committed bench/baseline.json is a --smoke run; refresh it with
//   ./build/bench/perf_suite --smoke --out bench/baseline.json
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/scenarios.h"

namespace {

using amcast::json::Value;

int usage() {
  std::fprintf(stderr,
               "usage: perf_suite [--smoke] [--out FILE] [--scenario NAME] "
               "[--seed N] [--compare BASELINE] [--tolerance PCT] [--list]\n");
  return 2;
}

/// Stable identity of a result row: name plus every param, in insertion
/// order (scenarios emit params deterministically).
std::string row_key(const Value& row) {
  const Value* name = row.find("name");
  std::string key = name ? name->as_string() : "(unnamed)";
  if (const Value* params = row.find("params")) {
    for (const auto& [k, v] : params->members()) {
      key += " " + k + "=";
      key += v.is_string() ? v.as_string() : std::to_string(v.as_number());
    }
  }
  return key;
}

/// Short human label: name + params without the key= noise for known ints.
std::string row_label(const Value& row) {
  const Value* name = row.find("name");
  std::string label = name ? name->as_string() : "(unnamed)";
  if (const Value* params = row.find("params")) {
    std::string args;
    for (const auto& [k, v] : params->members()) {
      if (!args.empty()) args += ", ";
      args += k + "=";
      if (v.is_string()) {
        args += v.as_string();
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%g", v.as_number());
        args += buf;
      }
    }
    if (!args.empty()) label += " (" + args + ")";
  }
  return label;
}

/// The gated throughput metric of a row, or nullptr when the document does
/// not follow the schema (hand-edited/older baselines must produce a
/// diagnostic, not a crash).
const Value* row_rate(const Value& row) {
  const Value* metrics = row.find("metrics");
  return metrics ? metrics->find("rate_per_s") : nullptr;
}

/// The CI perf gate: matches rows by (name, params) and fails when
/// rate_per_s deviates more than `tolerance` from the baseline, or when the
/// row sets differ (schema drift requires an intentional baseline refresh).
/// With `partial_run` (a --scenario filter was active) unmatched baseline
/// rows are expected and not failures — a developer iterating on one
/// scenario still gets a meaningful local gate.
int compare_against_baseline(const Value& current, const std::string& path,
                             double tolerance, bool partial_run) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "perf gate: cannot read baseline %s\n", path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  std::string err;
  Value baseline = Value::parse(ss.str(), &err);
  if (baseline.is_null()) {
    std::fprintf(stderr, "perf gate: baseline %s: %s\n", path.c_str(),
                 err.c_str());
    return 1;
  }

  const Value* bsmoke = baseline.find("smoke");
  const Value* csmoke = current.find("smoke");
  if (bsmoke && csmoke && bsmoke->as_bool() != csmoke->as_bool()) {
    std::fprintf(stderr,
                 "perf gate: baseline is a %s run but this is a %s run; "
                 "compare like with like\n",
                 bsmoke->as_bool() ? "--smoke" : "full",
                 csmoke->as_bool() ? "--smoke" : "full");
    return 1;
  }

  const Value* base_scenarios = baseline.find("scenarios");
  if (base_scenarios == nullptr || !base_scenarios->is_array()) {
    std::fprintf(stderr,
                 "perf gate: baseline %s has no \"scenarios\" array — refresh "
                 "bench/baseline.json\n",
                 path.c_str());
    return 1;
  }
  std::vector<std::pair<std::string, const Value*>> base_rows;
  for (const auto& row : base_scenarios->items()) {
    base_rows.emplace_back(row_key(row), &row);
  }

  amcast::TextTable t({"scenario", "baseline", "current", "delta", "verdict"});
  int failures = 0;
  std::size_t matched = 0;
  for (const auto& row : current.find("scenarios")->items()) {
    std::string key = row_key(row);
    const Value* base = nullptr;
    for (const auto& [bk, bv] : base_rows) {
      if (bk == key) {
        base = bv;
        break;
      }
    }
    const Value* cur_rate_v = row_rate(row);
    if (cur_rate_v == nullptr) {
      t.add_row({row_label(row), "-", "(no rate_per_s)", "-",
                 "FAIL: row lacks metrics.rate_per_s"});
      ++failures;
      continue;
    }
    double cur_rate = cur_rate_v->as_number();
    if (base == nullptr) {
      t.add_row({row_label(row), "(missing)", amcast::TextTable::num(cur_rate, 0),
                 "-", "FAIL: not in baseline — refresh bench/baseline.json"});
      ++failures;
      continue;
    }
    ++matched;
    const Value* base_rate_v = row_rate(*base);
    if (base_rate_v == nullptr) {
      t.add_row({row_label(row), "(no rate_per_s)",
                 amcast::TextTable::num(cur_rate, 0), "-",
                 "FAIL: baseline row lacks metrics.rate_per_s — refresh "
                 "bench/baseline.json"});
      ++failures;
      continue;
    }
    double base_rate = base_rate_v->as_number();
    double delta =
        base_rate != 0 ? (cur_rate - base_rate) / base_rate : (cur_rate != 0);
    bool ok = delta >= -tolerance && delta <= tolerance;
    char dbuf[32];
    std::snprintf(dbuf, sizeof(dbuf), "%+.1f%%", delta * 100);
    t.add_row({row_label(row), amcast::TextTable::num(base_rate, 0),
               amcast::TextTable::num(cur_rate, 0), dbuf,
               ok ? "ok" : "FAIL"});
    if (!ok) ++failures;
  }
  if (matched < base_rows.size() && !partial_run) {
    std::fprintf(stderr,
                 "perf gate: %zu baseline row(s) were not produced by this "
                 "run — refresh bench/baseline.json\n",
                 base_rows.size() - matched);
    ++failures;
  }
  char title[128];
  std::snprintf(title, sizeof(title),
                "Perf gate vs %s (rate_per_s, tolerance +/-%.0f%%)",
                path.c_str(), tolerance * 100);
  t.print(title);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amcast;
  bench::SuiteOptions opts;
  std::string out = "BENCH_perf.json";
  std::string only;
  std::string baseline_path;
  double tolerance = 0.25;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--smoke")) {
      opts.smoke = true;
    } else if (!std::strcmp(argv[i], "--out")) {
      out = next("--out");
    } else if (!std::strcmp(argv[i], "--scenario")) {
      only = next("--scenario");
    } else if (!std::strcmp(argv[i], "--seed")) {
      opts.seed = std::strtoull(next("--seed"), nullptr, 10);
      // JSON numbers are doubles: a seed above 2^53 would be recorded
      // inexactly in BENCH_perf.json, breaking the artifact's replay
      // contract. Reject rather than silently round.
      if (opts.seed > (1ull << 53)) {
        std::fprintf(stderr,
                     "--seed must be <= 2^53 so BENCH_*.json records it "
                     "exactly (JSON numbers are doubles)\n");
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--compare")) {
      baseline_path = next("--compare");
    } else if (!std::strcmp(argv[i], "--tolerance")) {
      tolerance = std::strtod(next("--tolerance"), nullptr) / 100.0;
    } else if (!std::strcmp(argv[i], "--list")) {
      for (const auto& s : bench::scenarios()) {
        std::printf("%-24s %s\n", s.name, s.what);
      }
      return 0;
    } else {
      return usage();
    }
  }

  bench::banner("perf_suite — unified scenario matrix",
                "throughput/latency tracking for the whole stack "
                "(BENCH_perf.json artifact)",
                opts.smoke ? "reduced --smoke matrix" : "full matrix");

  std::vector<bench::ScenarioResult> rows;
  bool found = only.empty();
  for (const auto& s : bench::scenarios()) {
    if (!only.empty() && only != s.name) continue;
    found = true;
    std::printf("running %s ...\n", s.name);
    std::fflush(stdout);
    auto r = s.run(opts);
    rows.insert(rows.end(), r.begin(), r.end());
  }
  if (!found) {
    std::fprintf(stderr, "unknown scenario '%s' (see --list)\n", only.c_str());
    return 2;
  }

  TextTable t({"scenario", "rate/s", "p50 ms", "p99 ms", "wall s"});
  for (const auto& r : rows) {
    auto metric = [&](const char* name) -> std::string {
      const json::Value* v = r.metrics.find(name);
      return v ? TextTable::num(v->as_number(), name[0] == 'p' ? 2 : 1) : "-";
    };
    t.add_row({row_label(r.to_json()), metric("rate_per_s"), metric("p50_ms"),
               metric("p99_ms"), metric("wall_s")});
  }
  t.print("Scenario matrix results (sim-time rates/latencies; wall_s = host)");

  json::Value doc =
      bench::bench_document("perf_suite", opts.seed, opts.smoke, rows);
  {
    std::ofstream f(out);
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    f << doc.dump();
  }
  std::printf("\nwrote %s (%zu scenario rows)\n", out.c_str(), rows.size());

  if (!baseline_path.empty()) {
    return compare_against_baseline(doc, baseline_path, tolerance,
                                    /*partial_run=*/!only.empty());
  }
  return 0;
}
