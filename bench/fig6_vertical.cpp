// Figure 6 reproduction: vertical scalability of dLog.
//
// Paper setup (§8.4.1): k = 1..5 rings, each ring on its own disk; each
// ring has three processes (two acceptors+proposers, one learner-only);
// learners subscribe to the k rings plus a shared ring; processes co-located
// on three machines. Clients send 1 KB appends batched into 32 KB packets;
// async disk writes; throughput reported per ring plus linear-scaling
// percentages, and the latency CDF for disk 1.
#include "bench/bench_util.h"
#include "dlog/deployment.h"

namespace amcast {
namespace {

struct RunResult {
  std::vector<double> per_ring_ops;
  double total_ops = 0;
  Histogram latency;
};

RunResult run(int k) {
  dlog::DLogDeploymentSpec spec;
  spec.logs = k;
  spec.server_nodes = 1;    // the learner-only machine runs the service
  spec.acceptor_nodes = 2;  // two acceptor+proposer machines
  spec.storage = ringpaxos::StorageOptions::Mode::kAsyncDisk;
  spec.disk = sim::Presets::hdd();
  spec.lambda = 9000;
  dlog::DLogDeployment d(spec);

  // 64 client threads per ring, 1 KB appends batched into 32 KB packets.
  auto& client = d.add_client(
      64 * k,
      [k](int t, Rng&) {
        dlog::Command c;
        c.op = dlog::Op::kAppend;
        c.logs = {dlog::LogId(t % k)};
        c.value.assign(1024, 0);
        return c;
      },
      /*batch_bytes=*/32 * 1024);

  const Duration warmup = duration::seconds(2);
  const Duration window = duration::seconds(5);
  d.sim().run_until(warmup);
  d.sim().metrics().histogram("dlog.latency").clear();
  std::vector<std::int64_t> len0;
  for (int l = 0; l < k; ++l) len0.push_back(d.server(0).log_length(l));
  std::int64_t c0 = client.completed();
  d.sim().run_until(warmup + window);

  RunResult r;
  for (int l = 0; l < k; ++l) {
    r.per_ring_ops.push_back(
        bench::rate(d.server(0).log_length(l) - len0[std::size_t(l)], window));
  }
  r.total_ops = bench::rate(client.completed() - c0, window);
  r.latency = d.sim().metrics().histogram("dlog.latency");
  return r;
}

}  // namespace
}  // namespace amcast

int main() {
  using namespace amcast;
  bench::banner(
      "Figure 6 — dLog vertical scalability (rings == disks)",
      "Benz et al., MIDDLEWARE'14, Figure 6",
      "k = 1..5 rings, one disk per ring, async acceptor writes; 1 KB "
      "appends batched to 32 KB; learners subscribe to k rings + shared ring");

  TextTable t({"rings", "disk1", "disk2", "disk3", "disk4", "disk5",
               "aggregate ops/s", "vs linear"});
  double base = 0;
  Histogram cdf_k1, cdf_k5;
  for (int k = 1; k <= 5; ++k) {
    auto r = run(k);
    std::vector<std::string> row{TextTable::integer(k)};
    for (int l = 0; l < 5; ++l) {
      row.push_back(l < k ? TextTable::num(r.per_ring_ops[std::size_t(l)], 0)
                          : "-");
    }
    row.push_back(TextTable::num(r.total_ops, 0));
    if (k == 1) {
      base = r.total_ops;
      row.push_back("100%");
    } else {
      row.push_back(TextTable::num(r.total_ops / (base * k) * 100, 0) + "%");
    }
    t.add_row(row);
    if (k == 1) cdf_k1 = r.latency;
    if (k == 5) cdf_k5 = r.latency;
  }
  t.print("Aggregate dLog throughput (ops/s) per ring  [paper: Fig. 6 top]");
  bench::print_cdf(cdf_k1, "Append latency CDF, 1 log  [paper: Fig. 6 bottom]");
  bench::print_cdf(cdf_k5, "Append latency CDF, 5 logs [paper: Fig. 6 bottom]");
  return 0;
}
