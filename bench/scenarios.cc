#include "bench/scenarios.h"

#include <memory>

#include "bench/driver.h"
#include "dlog/deployment.h"
#include "kvstore/deployment.h"
#include "ycsb/workload.h"

namespace amcast::bench {
namespace {

using core::MulticastNode;
using ringpaxos::ConfigRegistry;
using ringpaxos::RingOptions;
using ringpaxos::StorageOptions;

/// Per-scenario windows: the scenario default, shrunk in smoke mode, both
/// overridable (tiny ctest cells).
struct Windows {
  Duration warmup;
  Duration window;
};

Windows windows(const SuiteOptions& o, Duration full_warmup,
                Duration full_window) {
  Windows w;
  w.warmup = o.smoke ? full_warmup / 4 : full_warmup;
  w.window = o.smoke ? full_window / 4 : full_window;
  if (o.warmup_override > 0) w.warmup = o.warmup_override;
  if (o.window_override > 0) w.window = o.window_override;
  return w;
}

/// Records the shared latency metrics from a histogram.
void latency_metrics(ScenarioResult& r, const Histogram& h) {
  r.metrics.set("mean_ms", h.mean_ms());
  r.metrics.set("p50_ms", h.p50_ms());
  r.metrics.set("p99_ms", h.p99_ms());
}

// ---------------------------------------------------------------------------
// Ring-layer scenarios (LoadDriver worlds)
// ---------------------------------------------------------------------------

/// A 3-node world where every node is proposer+acceptor+learner on `rings`
/// rings; closed-loop drivers saturate them. The shared core of the
/// single-ring, multi-ring, and batching scenarios.
struct RingWorld {
  sim::Simulation sim;
  ConfigRegistry registry;
  std::vector<LoadDriver*> nodes;
  std::vector<GroupId> groups;

  RingWorld(std::uint64_t seed, int rings, int threads_per_node,
            std::size_t value_bytes, const RingOptions& ro)
      : sim(seed) {
    std::vector<ProcessId> ids;
    for (int i = 0; i < 3; ++i) {
      auto n = std::make_unique<LoadDriver>(registry, threads_per_node,
                                            value_bytes);
      nodes.push_back(n.get());
      ids.push_back(sim.add_node(std::move(n)));
    }
    for (int r = 0; r < rings; ++r) {
      groups.push_back(
          registry.create_ring(ids, ids, ids[std::size_t(r) % ids.size()]));
    }
    for (auto* n : nodes) {
      for (GroupId g : groups) n->subscribe(g, ro);
    }
    for (auto* n : nodes) n->start_load(groups);
  }

  /// Warmup, measure, and return a result row with throughput + latency.
  ScenarioResult measure(const char* name, std::uint64_t seed, Windows w) {
    WallClock wall;
    sim.run_until(sim.now() + w.warmup);
    sim.metrics().histogram(kLatencyHist).clear();
    std::int64_t c0 = 0;
    for (auto* n : nodes) c0 += n->completed();
    sim.run_until(sim.now() + w.window);
    std::int64_t c1 = 0;
    for (auto* n : nodes) c1 += n->completed();

    ScenarioResult r;
    r.name = name;
    r.seed = seed;
    r.metrics.set("rate_per_s", rate(c1 - c0, w.window));
    latency_metrics(r, sim.metrics().histogram(kLatencyHist));
    r.metrics.set("wall_s", wall.seconds());
    return r;
  }
};

std::vector<ScenarioResult> run_single_ring(const SuiteOptions& o) {
  Windows w = windows(o, duration::seconds(1), duration::seconds(2));
  std::vector<std::size_t> sizes = o.smoke
                                       ? std::vector<std::size_t>{128}
                                       : std::vector<std::size_t>{128, 1024,
                                                                  8192};
  std::vector<ScenarioResult> rows;
  for (std::size_t size : sizes) {
    RingOptions ro;  // in-memory, no packing/batching: the raw protocol
    RingWorld world(o.seed, /*rings=*/1, /*threads_per_node=*/64, size, ro);
    auto r = world.measure("single_ring_saturation", o.seed, w);
    r.params.set("nodes", 3);
    r.params.set("threads_per_node", 64);
    r.params.set("value_bytes", size);
    rows.push_back(std::move(r));
  }
  return rows;
}

std::vector<ScenarioResult> run_multi_ring(const SuiteOptions& o) {
  Windows w = windows(o, duration::seconds(1), duration::seconds(2));
  std::vector<int> ring_counts =
      o.smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  std::vector<ScenarioResult> rows;
  for (int rings : ring_counts) {
    RingOptions ro;
    ro.lambda = 9000;  // rate leveling keeps the merge moving (paper §4)
    ro.delta = duration::milliseconds(5);
    RingWorld world(o.seed, rings, /*threads_per_node=*/48, 512, ro);
    auto r = world.measure("multi_ring_scaling", o.seed, w);
    r.params.set("nodes", 3);
    r.params.set("rings", rings);
    r.params.set("threads_per_node", 48);
    r.params.set("value_bytes", 512);
    rows.push_back(std::move(r));
  }
  return rows;
}

std::vector<ScenarioResult> run_value_batching(const SuiteOptions& o) {
  Windows w = windows(o, duration::seconds(1), duration::seconds(2));
  std::vector<int> batches =
      o.smoke ? std::vector<int>{1, 16} : std::vector<int>{1, 16, 64};
  std::vector<ScenarioResult> rows;
  for (int batch : batches) {
    RingOptions ro;
    ro.batch_values = batch;
    ro.batch_delay = duration::microseconds(200);
    RingWorld world(o.seed, /*rings=*/1, /*threads_per_node=*/64, 128, ro);
    auto r = world.measure("value_batching", o.seed, w);
    r.params.set("nodes", 3);
    r.params.set("threads_per_node", 64);
    r.params.set("value_bytes", 128);
    r.params.set("batch_values", batch);
    rows.push_back(std::move(r));
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Service scenarios (deployment builders)
// ---------------------------------------------------------------------------

kvstore::KvClient::Generator ycsb_gen(std::shared_ptr<ycsb::Generator> gen) {
  return [gen](int thread, Rng& rng) { return gen->next(thread, rng); };
}

ScenarioResult run_ycsb(const SuiteOptions& o, const char* name,
                        ycsb::WorkloadSpec::Dist dist) {
  Windows w = windows(o, duration::milliseconds(500), duration::seconds(2));
  const std::uint64_t records = o.smoke ? 4000 : 20000;
  const int threads = 60;

  WallClock wall;
  kvstore::KvDeploymentSpec spec;
  spec.partitions = 3;
  spec.replicas_per_partition = 3;
  spec.partitioner = kvstore::Partitioner::hash(3);
  spec.storage = StorageOptions::Mode::kAsyncDisk;
  spec.disk = sim::Presets::hdd();
  spec.lambda = 9000;
  spec.seed = o.seed;
  kvstore::KvDeployment d(spec);
  d.preload(records, 1024, ycsb::Generator::key_of);

  auto ws = ycsb::WorkloadSpec::standard(ycsb::Workload::A);
  ws.dist = dist;
  auto gen = std::make_shared<ycsb::Generator>(ws, records, 1024, threads);
  auto& client = d.add_client(threads, ycsb_gen(gen));

  d.sim().run_until(w.warmup);
  for (const char* h : {"kv.latency", "kv.latency.read", "kv.latency.update"}) {
    if (d.sim().metrics().has_histogram(h)) {
      d.sim().metrics().histogram(h).clear();
    }
  }
  std::int64_t c0 = client.completed();
  d.sim().run_until(w.warmup + w.window);

  ScenarioResult r;
  r.name = name;
  r.seed = o.seed;
  r.params.set("workload", "A");
  r.params.set("dist",
               dist == ycsb::WorkloadSpec::Dist::kUniform ? "uniform" : "zipf");
  r.params.set("partitions", 3);
  r.params.set("records", records);
  r.params.set("threads", threads);
  r.metrics.set("rate_per_s", rate(client.completed() - c0, w.window));
  latency_metrics(r, d.sim().metrics().histogram("kv.latency"));
  r.metrics.set("wall_s", wall.seconds());
  return r;
}

std::vector<ScenarioResult> run_ycsb_uniform(const SuiteOptions& o) {
  return {run_ycsb(o, "ycsb_uniform", ycsb::WorkloadSpec::Dist::kUniform)};
}

std::vector<ScenarioResult> run_ycsb_zipf(const SuiteOptions& o) {
  return {run_ycsb(o, "ycsb_zipf", ycsb::WorkloadSpec::Dist::kZipfian)};
}

std::vector<ScenarioResult> run_dlog(const SuiteOptions& o) {
  Windows w = windows(o, duration::seconds(1), duration::seconds(2));
  const int threads = 64;

  WallClock wall;
  dlog::DLogDeploymentSpec spec;
  spec.logs = 2;
  spec.server_nodes = 1;
  spec.acceptor_nodes = 2;
  spec.storage = StorageOptions::Mode::kAsyncDisk;
  spec.disk = sim::Presets::hdd();
  spec.lambda = 9000;
  spec.seed = o.seed;
  dlog::DLogDeployment d(spec);

  // 90/10 append/read mix over both logs; reads target the warm prefix the
  // appends of the warmup phase created.
  auto& client = d.add_client(
      threads,
      [](int t, Rng& rng) {
        dlog::Command c;
        c.logs = {dlog::LogId(t % 2)};
        if (rng.next_u64(10) == 0) {
          c.op = dlog::Op::kRead;
          c.position = std::int64_t(rng.next_u64(200));
        } else {
          c.op = dlog::Op::kAppend;
          c.value.assign(1024, 0);
        }
        return c;
      },
      /*batch_bytes=*/32 * 1024);

  d.sim().run_until(w.warmup);
  for (const char* h :
       {"dlog.latency", "dlog.latency.append", "dlog.latency.read"}) {
    if (d.sim().metrics().has_histogram(h)) {
      d.sim().metrics().histogram(h).clear();
    }
  }
  std::int64_t c0 = client.completed();
  d.sim().run_until(w.warmup + w.window);

  ScenarioResult r;
  r.name = "dlog_append_read";
  r.seed = o.seed;
  r.params.set("logs", 2);
  r.params.set("threads", threads);
  r.params.set("value_bytes", 1024);
  r.params.set("append_pct", 90);
  r.metrics.set("rate_per_s", rate(client.completed() - c0, w.window));
  latency_metrics(r, d.sim().metrics().histogram("dlog.latency"));
  r.metrics.set("wall_s", wall.seconds());
  return {r};
}

std::vector<ScenarioResult> run_checkpoint_recovery(const SuiteOptions& o) {
  // Windows here pace the whole timeline, not just the measurement: the
  // steady-state rate is measured over `window` before the crash.
  Windows w = windows(o, duration::seconds(1), duration::seconds(2));
  const std::uint64_t records = o.smoke ? 4000 : 10000;

  WallClock wall;
  kvstore::KvDeploymentSpec spec;
  spec.partitions = 1;
  spec.replicas_per_partition = 3;
  spec.dedicated_acceptors = 3;
  spec.partitioner = kvstore::Partitioner::hash(1);
  spec.storage = StorageOptions::Mode::kAsyncDisk;
  spec.disk = sim::Presets::hdd();
  spec.lambda = 9000;
  spec.checkpoint_interval = w.warmup + w.window / 2;
  spec.trim_interval = w.warmup + w.window;
  spec.seed = o.seed;
  kvstore::KvDeployment d(spec);
  d.preload(records, 1024,
            [](std::uint64_t rec) { return "key" + std::to_string(rec); });
  auto& client = d.add_client(8, [records](int, Rng& rng) {
    kvstore::Command c;
    c.op = kvstore::Op::kUpdate;
    c.key = "key" + std::to_string(rng.next_u64(records));
    c.value.assign(1024, 0);
    return c;
  });

  auto& sim = d.sim();
  sim.run_until(w.warmup);
  std::int64_t c0 = client.completed();
  sim.run_until(w.warmup + w.window);
  double steady_rate = rate(client.completed() - c0, w.window);

  Time crash_at = sim.now();
  d.crash_replica(0, 2);
  sim.run_until(crash_at + w.window);  // survivors checkpoint meanwhile
  Time restart_at = sim.now();
  d.restart_replica(0, 2);

  // Run in slices until recovery completes (bounded), then read the exact
  // completion time from the replica's event log.
  Time deadline = restart_at + 20 * w.window;
  while (d.replica(0, 2).recovering() && sim.now() < deadline) {
    sim.run_until(sim.now() + w.window / 8);
  }
  double recovery_s = -1;
  for (const auto& [t, e] : d.replica(0, 2).events()) {
    if (e == "recovery.done" && t >= restart_at) {
      recovery_s = duration::to_seconds(t - restart_at);
      break;
    }
  }

  ScenarioResult r;
  r.name = "checkpoint_recovery";
  r.seed = o.seed;
  r.params.set("replicas", 3);
  r.params.set("dedicated_acceptors", 3);
  r.params.set("records", records);
  r.params.set("threads", 8);
  r.metrics.set("rate_per_s", steady_rate);
  r.metrics.set("recovery_s", recovery_s);
  r.metrics.set(
      "checkpoints",
      double(sim.metrics().counter_value("recovery.checkpoints")));
  r.metrics.set("trims",
                double(sim.metrics().counter_value("recovery.acceptor_trims")));
  r.metrics.set("wall_s", wall.seconds());
  return {r};
}

}  // namespace

const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> kAll = {
      {"single_ring_saturation",
       "1 ring x 3 co-located nodes at closed-loop saturation, per value size",
       run_single_ring},
      {"multi_ring_scaling",
       "aggregate msgs/s as rings grow 1..8 on the same 3 machines",
       run_multi_ring},
      {"value_batching", "coordinator value-batching sweep, 128 B values",
       run_value_batching},
      {"ycsb_uniform", "YCSB A on MRP-Store (3 partitions), uniform keys",
       run_ycsb_uniform},
      {"ycsb_zipf", "YCSB A on MRP-Store (3 partitions), zipfian keys",
       run_ycsb_zipf},
      {"dlog_append_read", "dLog 90/10 append/read mix, 2 logs + shared ring",
       run_dlog},
      {"checkpoint_recovery",
       "MRP-Store replica crash/restart; steady rate + recovery time",
       run_checkpoint_recovery},
  };
  return kAll;
}

std::vector<ScenarioResult> run_scenario(const std::string& name,
                                         const SuiteOptions& opts) {
  for (const auto& s : scenarios()) {
    if (name == s.name) return s.run(opts);
  }
  return {};
}

}  // namespace amcast::bench
