// Ablation A3: batching in the ring. Two distinct levers exist (paper §4):
//
//  * value batching — the coordinator decides up to `batch_values`
//    application values in ONE consensus instance (the URingPaxos
//    optimization that lifts CPU-bound small-value throughput);
//  * message packing — outgoing ring messages to the same successor are
//    grouped into bigger packets (wire-level only; one instance per value).
//
// This bench sweeps the cross product for small values, where the
// per-instance/per-message CPU cost dominates, and reports msgs/s plus mean
// delivery latency. Run with --smoke for a seconds-long CI sanity pass.
#include <cstring>
#include <memory>

#include "bench/bench_util.h"
#include "bench/driver.h"

namespace amcast {
namespace {

using bench::LoadDriver;
using ringpaxos::ConfigRegistry;
using ringpaxos::RingOptions;

struct Result {
  double ops;
  double lat_ms;
};

Result run(int batch_values, bool packing, std::size_t size, int threads,
           Duration warmup, Duration window) {
  sim::Simulation sim(5);
  ConfigRegistry registry;
  std::vector<LoadDriver*> nodes;
  std::vector<ProcessId> ids;
  for (int i = 0; i < 3; ++i) {
    auto n = std::make_unique<LoadDriver>(registry, threads, size);
    nodes.push_back(n.get());
    ids.push_back(sim.add_node(std::move(n)));
  }
  GroupId g = registry.create_ring(ids, ids, ids[0]);
  RingOptions ro;
  ro.packing = packing;
  ro.pack_delay = duration::microseconds(200);
  ro.pack_bytes = 32 * 1024;
  ro.batch_values = batch_values;
  ro.batch_delay = duration::microseconds(200);
  for (auto* n : nodes) n->subscribe(g, ro);
  for (auto* n : nodes) n->start_load(g);

  sim.run_until(warmup);
  sim.metrics().histogram(bench::kLatencyHist).clear();
  std::int64_t c0 = 0;
  for (auto* n : nodes) c0 += n->completed();
  sim.run_until(warmup + window);
  std::int64_t c1 = 0;
  for (auto* n : nodes) c1 += n->completed();

  Result r{};
  r.ops = double(c1 - c0) / duration::to_seconds(window);
  r.lat_ms = sim.metrics().histogram(bench::kLatencyHist).mean_ms();
  return r;
}

int run_sweep(bool smoke) {
  using namespace amcast::bench;
  banner("Ablation A3 — value batching x message packing",
         "paper §4 batching optimizations (URingPaxos decides many values "
         "per instance; packing groups wire messages)",
         "1 ring x 3 nodes, 64 closed-loop threads per node, small values");

  const Duration warmup =
      smoke ? duration::milliseconds(200) : duration::seconds(1);
  const Duration window =
      smoke ? duration::milliseconds(400) : duration::seconds(2);
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{128}
            : std::vector<std::size_t>{128, 512};
  const std::vector<int> batches =
      smoke ? std::vector<int>{1, 16} : std::vector<int>{1, 16, 64};
  const std::vector<bool> packings =
      smoke ? std::vector<bool>{false} : std::vector<bool>{false, true};

  TextTable t({"value size", "batch_values", "packing", "msgs/s",
               "mean latency ms", "speedup"});
  bool batched_beats_baseline = true;
  for (std::size_t size : sizes) {
    for (bool packing : packings) {
      double baseline = 0;
      for (int batch : batches) {
        Result r = run(batch, packing, size, 64, warmup, window);
        if (batch == 1) baseline = r.ops;
        // The 2x gate applies to the packing-off comparison: with packing
        // on, the wire level already amortizes the per-message cost and
        // both configs sit near the same ceiling.
        if (batch >= 16 && !packing && r.ops < 2.0 * baseline) {
          batched_beats_baseline = false;
        }
        t.add_row({TextTable::integer((long long)size),
                   TextTable::integer(batch), packing ? "on" : "off",
                   TextTable::num(r.ops, 0), TextTable::num(r.lat_ms, 2),
                   baseline > 0 ? TextTable::num(r.ops / baseline, 2) + "x"
                                : "-"});
      }
    }
  }
  t.print("Throughput/latency across value batching x packing");
  std::printf(
      "\nExpected: value batching amortizes the per-instance consensus cost\n"
      "(>= 2x msgs/s for small values at batch_values >= 16); packing\n"
      "additionally amortizes per-message network/CPU cost. Both trade a\n"
      "bounded delay (batch_delay / pack_delay) for throughput.\n");
  if (!batched_beats_baseline) {
    std::printf("WARNING: batch_values >= 16 did not reach 2x the unbatched "
                "baseline.\n");
    return smoke ? 1 : 0;  // smoke mode doubles as a CI regression gate
  }
  return 0;
}

}  // namespace
}  // namespace amcast

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  return amcast::run_sweep(smoke);
}
