// Ablation A3: message packing in the ring (paper §4: "different types of
// messages for several consensus instances are often grouped into bigger
// packets"). The Figure 3 baseline disables it; this ablation compares
// packing off/on for small values, where per-message CPU dominates.
#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "core/multicast.h"

namespace amcast {
namespace {

using core::MulticastNode;
using ringpaxos::ConfigRegistry;
using ringpaxos::RingOptions;

class Driver final : public MulticastNode {
 public:
  Driver(ConfigRegistry& reg, int threads, std::size_t size)
      : MulticastNode(reg), threads_(threads), size_(size) {}
  void start_load(GroupId g) {
    group_ = g;
    for (int t = 0; t < threads_; ++t) issue();
  }
  std::int64_t completed = 0;

 protected:
  void on_deliver(GroupId g, const ringpaxos::ValuePtr& v) override {
    if (v->origin == id()) {
      auto it = outstanding_.find(v->msg_id);
      if (it != outstanding_.end()) {
        sim().metrics().histogram("pk.latency").record_duration(now() -
                                                                it->second);
        outstanding_.erase(it);
        ++completed;
        issue();
      }
    }
    MulticastNode::on_deliver(g, v);
  }

 private:
  void issue() {
    MessageId mid = multicast(group_, size_);
    outstanding_[mid] = now();
  }
  int threads_;
  std::size_t size_;
  GroupId group_ = kInvalidGroup;
  std::map<MessageId, Time> outstanding_;
};

struct Result {
  double ops;
  double lat_ms;
};

Result run(bool packing, std::size_t size, int threads) {
  sim::Simulation sim(5);
  ConfigRegistry registry;
  std::vector<Driver*> nodes;
  std::vector<ProcessId> ids;
  for (int i = 0; i < 3; ++i) {
    auto n = std::make_unique<Driver>(registry, threads, size);
    nodes.push_back(n.get());
    ids.push_back(sim.add_node(std::move(n)));
  }
  GroupId g = registry.create_ring(ids, ids, ids[0]);
  RingOptions ro;
  ro.packing = packing;
  ro.pack_delay = duration::microseconds(200);
  ro.pack_bytes = 32 * 1024;
  for (auto* n : nodes) n->subscribe(g, ro);
  for (auto* n : nodes) n->start_load(g);

  sim.run_until(duration::seconds(1));
  sim.metrics().histogram("pk.latency").clear();
  std::int64_t c0 = 0;
  for (auto* n : nodes) c0 += n->completed;
  sim.run_until(duration::seconds(3));
  std::int64_t c1 = 0;
  for (auto* n : nodes) c1 += n->completed;

  Result r{};
  r.ops = double(c1 - c0) / 2.0;
  r.lat_ms = sim.metrics().histogram("pk.latency").mean_ms();
  return r;
}

}  // namespace
}  // namespace amcast

int main() {
  using namespace amcast;
  bench::banner("Ablation A3 — ring message packing on/off",
                "paper §4 packing optimization (Figure 3 disables it)",
                "1 ring x 3 nodes, 64 closed-loop threads per node");
  TextTable t({"value size", "packing", "msgs/s", "mean latency ms"});
  for (std::size_t size : {128, 512, 2048}) {
    for (bool packing : {false, true}) {
      auto r = run(packing, size, 64);
      t.add_row({TextTable::integer((long long)size), packing ? "on" : "off",
                 TextTable::num(r.ops, 0), TextTable::num(r.lat_ms, 2)});
    }
  }
  t.print("Throughput/latency with and without packing");
  std::printf("\nExpected: packing amortizes the per-message CPU cost, raising\n"
              "small-value throughput at a small latency cost (pack delay).\n");
  return 0;
}
