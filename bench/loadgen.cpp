// loadgen — open-loop load generator for a live amcast_noded cluster, plus
// the runtime-domain perf gate.
//
// Run mode drives the cluster described by --config as the configured
// client process: it preloads the key universe, then sweeps the offered
// rates left to right, measuring each point with warmup + window + drain
// and appending one scenario row per point to a BENCH_runtime.json
// artifact (schema in bench/bench_util.h). Thousands of logical sessions
// share this one process's transport connections; arrivals are Poisson and
// latency is measured from intended send time (see bench/loadgen_core.h).
//
//   loadgen --config cluster.json --rates 500,1000,2000 --window-s 3
//           --out BENCH_runtime.json --append
//
// Gate mode needs no cluster: it checks an artifact against the committed
// baseline and the paper's shapes (fig3 saturation, fig7 ring scaling):
//
//   loadgen --gate BENCH_runtime.json --compare bench/baseline_runtime.json
//           --tolerance 50 --require-scaling
//
// Exit codes: 0 ok, 1 setup/gate failure, 2 the sweep measured nothing.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/loadgen_core.h"
#include "kvstore/partitioner.h"
#include "net/cluster_config.h"
#include "net/transport.h"
#include "net/wire.h"
#include "obs/scrape.h"
#include "runtime/executor.h"

namespace {

using namespace amcast;
using bench::LoadGenClient;
using bench::LoadGenOptions;

int usage() {
  std::fprintf(
      stderr,
      "usage: loadgen --config FILE --rates R1,R2,... [options]\n"
      "   or: loadgen --gate FILE [--compare BASELINE] [--tolerance PCT]\n"
      "               [--require-saturation] [--require-scaling]\n"
      "               [--require-multicore-speedup X]\n"
      "run options:\n"
      "  --process NAME|ID     client process to run as (default: first\n"
      "                        role=client in the config)\n"
      "  --sessions N          concurrent logical sessions (default 1000)\n"
      "  --get-ratio F         fraction of reads, 0..1 (default 0.5)\n"
      "  --value-bytes N       write payload size (default 128)\n"
      "  --keys N              key universe size (default 5000)\n"
      "  --dist uniform|zipfian  key distribution (default uniform)\n"
      "  --warmup-s S          per-point warmup (default 1)\n"
      "  --window-s S          per-point measurement window (default 3)\n"
      "  --timeout-ms N        per-op timeout (default 5000)\n"
      "  --seed N              workload/schedule seed (default 1)\n"
      "  --name NAME           scenario row name (default runtime_sweep)\n"
      "  --label-threads N     executor threads per server process, for the\n"
      "                        artifact rows (the cluster itself is\n"
      "                        configured via amcast_noded --threads)\n"
      "  --no-preload          skip populating the key universe\n"
      "  --scrape              scrape the replicas' /metrics after each\n"
      "                        point; adds server-side stage breakdowns\n"
      "                        (server_stage_*_p50/p99_ms) to the rows\n"
      "  --out FILE            artifact path (default BENCH_runtime.json)\n"
      "  --append              merge rows into an existing artifact\n"
      "  --smoke               mark the artifact as a reduced run\n");
  return 64;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

Duration secs(double s) { return Duration(std::int64_t(s * 1e9)); }

std::vector<double> parse_rates(const std::string& arg) {
  std::vector<double> rates;
  std::istringstream is(arg);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    double r = std::strtod(tok.c_str(), nullptr);
    if (r > 0) rates.push_back(r);
  }
  return rates;
}

/// --scrape: server-side stage breakdown for one rate point. The stage
/// histograms are cumulative since daemon start (sampled lifecycle
/// traces), so this is a running profile rather than a per-window delta —
/// what the smoke check needs (stage p50 sum vs the client-observed p50)
/// and enough to see where time goes as a sweep saturates. Every replica
/// exposing a metrics_port is scraped; the endpoint that completed the
/// most traces wins (the partition coordinator observes the full
/// submit->apply span; other replicas only see the tail stages).
bool scrape_stage_metrics(const net::ClusterConfig& cfg,
                          std::map<std::string, double>* out) {
  double best_count = -1;
  for (const auto& p : cfg.processes) {
    if (p.role != "replica" || p.metrics_port == 0) continue;
    obs::ScrapeResult res = obs::http_get(p.host, p.metrics_port, "/metrics");
    if (!res.ok || res.status != 200) continue;
    auto m = obs::parse_prometheus(res.body);
    double count = obs::metric_value(m, "obs_stage_total_ms_count");
    if (count > best_count) {
      best_count = count;
      *out = std::move(m);
    }
  }
  return best_count >= 0;
}

void add_stage_metrics(const std::map<std::string, double>& m,
                       bench::ScenarioResult* row) {
  for (const char* stage : {"queue", "ring", "merge", "apply", "total"}) {
    std::string fam = std::string("obs_stage_") + stage + "_ms";
    row->metrics.set("server_stage_" + std::string(stage) + "_p50_ms",
                     obs::metric_value(m, fam + "{quantile=\"0.5\"}"));
    row->metrics.set("server_stage_" + std::string(stage) + "_p99_ms",
                     obs::metric_value(m, fam + "{quantile=\"0.99\"}"));
  }
  row->metrics.set("server_stage_traces",
                   obs::metric_value(m, "obs_stage_total_ms_count"));
}

int run_gate(const std::string& current_path, const std::string& compare_path,
             const bench::RuntimeGateOptions& opts) {
  std::string text, error;
  if (!read_file(current_path, &text)) {
    std::fprintf(stderr, "loadgen: cannot read %s\n", current_path.c_str());
    return 1;
  }
  json::Value current = json::Value::parse(text, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "loadgen: %s: %s\n", current_path.c_str(),
                 error.c_str());
    return 1;
  }
  json::Value baseline;
  bool have_baseline = false;
  if (!compare_path.empty()) {
    if (!read_file(compare_path, &text)) {
      std::fprintf(stderr, "loadgen: cannot read %s\n", compare_path.c_str());
      return 1;
    }
    baseline = json::Value::parse(text, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "loadgen: %s: %s\n", compare_path.c_str(),
                   error.c_str());
      return 1;
    }
    have_baseline = true;
  }
  return bench::gate_runtime_report(current,
                                    have_baseline ? &baseline : nullptr, opts);
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path, process_arg, rates_arg;
  std::string out_path = "BENCH_runtime.json";
  std::string name = "runtime_sweep";
  std::string gate_path, compare_path;
  LoadGenOptions opts;
  bench::RuntimeGateOptions gate_opts;
  double warmup_s = 1, window_s = 3;
  int label_threads = 1;
  bool append = false, smoke = false, preload = true, scrape = false;
  bool gate_mode = false;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto next_d = [&](double* out) {
      const char* v = next();
      if (v != nullptr) *out = std::strtod(v, nullptr);
      return v != nullptr;
    };
    if (a == "--config") {
      const char* v = next();
      if (!v) return usage();
      config_path = v;
    } else if (a == "--process") {
      const char* v = next();
      if (!v) return usage();
      process_arg = v;
    } else if (a == "--rates") {
      const char* v = next();
      if (!v) return usage();
      rates_arg = v;
    } else if (a == "--sessions") {
      double v = 0;
      if (!next_d(&v)) return usage();
      opts.sessions = int(v);
    } else if (a == "--get-ratio") {
      if (!next_d(&opts.get_ratio)) return usage();
    } else if (a == "--value-bytes") {
      double v = 0;
      if (!next_d(&v)) return usage();
      opts.value_bytes = std::size_t(v);
    } else if (a == "--keys") {
      double v = 0;
      if (!next_d(&v)) return usage();
      opts.key_count = std::uint64_t(v);
    } else if (a == "--dist") {
      const char* v = next();
      if (!v) return usage();
      opts.key_dist = v;
    } else if (a == "--warmup-s") {
      if (!next_d(&warmup_s)) return usage();
    } else if (a == "--window-s") {
      if (!next_d(&window_s)) return usage();
    } else if (a == "--timeout-ms") {
      double v = 0;
      if (!next_d(&v)) return usage();
      opts.op_timeout = duration::milliseconds(std::int64_t(v));
    } else if (a == "--seed") {
      double v = 0;
      if (!next_d(&v)) return usage();
      opts.seed = std::uint64_t(v);
    } else if (a == "--name") {
      const char* v = next();
      if (!v) return usage();
      name = v;
    } else if (a == "--label-threads") {
      double v = 0;
      if (!next_d(&v) || v < 1) return usage();
      label_threads = int(v);
    } else if (a == "--out") {
      const char* v = next();
      if (!v) return usage();
      out_path = v;
    } else if (a == "--append") {
      append = true;
    } else if (a == "--smoke") {
      smoke = true;
    } else if (a == "--no-preload") {
      preload = false;
    } else if (a == "--scrape") {
      scrape = true;
    } else if (a == "--gate") {
      const char* v = next();
      if (!v) return usage();
      gate_path = v;
      gate_mode = true;
    } else if (a == "--compare") {
      const char* v = next();
      if (!v) return usage();
      compare_path = v;
    } else if (a == "--tolerance") {
      double pct = 0;
      if (!next_d(&pct)) return usage();
      gate_opts.tolerance = pct / 100.0;
    } else if (a == "--require-saturation") {
      gate_opts.require_saturation = true;
    } else if (a == "--require-scaling") {
      gate_opts.require_scaling = true;
    } else if (a == "--require-multicore-speedup") {
      if (!next_d(&gate_opts.require_multicore_speedup)) return usage();
    } else {
      std::fprintf(stderr, "loadgen: unknown flag %s\n", a.c_str());
      return usage();
    }
  }

  if (gate_mode) return run_gate(gate_path, compare_path, gate_opts);
  if (config_path.empty() || rates_arg.empty()) return usage();
  std::vector<double> rates = parse_rates(rates_arg);
  if (rates.empty()) {
    std::fprintf(stderr, "loadgen: no valid rates in --rates\n");
    return 1;
  }
  if (opts.key_dist != "uniform" && opts.key_dist != "zipfian") {
    std::fprintf(stderr, "loadgen: --dist must be uniform or zipfian\n");
    return 1;
  }

  // --- cluster membership: same setup as amcast_kv ------------------------
  net::ClusterConfig cfg;
  std::string error;
  if (!net::ClusterConfig::load(config_path, &cfg, &error)) {
    std::fprintf(stderr, "loadgen: %s\n", error.c_str());
    return 1;
  }
  const net::ProcessSpec* self = nullptr;
  if (!process_arg.empty()) {
    self = cfg.resolve(process_arg);
  } else {
    for (const auto& p : cfg.processes) {
      if (p.role == "client") {
        self = &p;
        break;
      }
    }
  }
  if (self == nullptr) {
    std::fprintf(stderr,
                 "loadgen: no client process in config (use --process)\n");
    return 1;
  }
  int rings = cfg.partition_count();

  net::set_snapshot_state_codec(net::kv_snapshot_state_codec());

  runtime::Executor ex({/*data_dir=*/"", std::uint64_t(self->id) + 1});
  net::Transport::Options topts;
  topts.self = self->id;
  topts.listen_host = self->host;
  topts.listen_port = self->port;
  topts.peers = cfg.peer_map();
  net::Transport transport(
      topts,
      [&ex](ProcessId from, ProcessId to, env::MessagePtr m) {
        ex.dispatch(from, to, std::move(m));
      },
      [&ex] { return ex.now(); });
  if (!transport.listen(&error)) {
    std::fprintf(stderr, "loadgen: %s\n", error.c_str());
    return 1;
  }
  ex.set_transport(&transport);

  core::ConfigRegistry registry;
  cfg.build_registry(registry);
  auto client = std::make_unique<LoadGenClient>(
      registry, kvstore::Partitioner::hash(cfg.partition_count()),
      cfg.partition_groups(), opts);
  client->set_default_proposal_timeout(cfg.options.proposal_timeout);
  ex.add_node(self->id, client.get());

  auto pump_for = [&](Duration d) {
    Time end = ex.now() + d;
    while (ex.now() < end) ex.run_once(duration::milliseconds(2));
  };
  auto pump_until = [&](const std::function<bool()>& pred, Duration limit) {
    Time deadline = ex.now() + limit;
    while (!pred() && ex.now() < deadline) {
      ex.run_once(duration::milliseconds(2));
    }
    return pred();
  };

  // --- preload ------------------------------------------------------------
  if (preload) {
    std::printf("loadgen: preloading %llu keys (%d rings)\n",
                (unsigned long long)opts.key_count, rings);
    std::fflush(stdout);
    ex.run_once(0);  // start the node before issuing
    client->start_preload(/*pipeline=*/64);
    Duration limit = duration::seconds(30 + std::int64_t(opts.key_count) / 200);
    if (!pump_until([&] { return client->preload_done(); }, limit)) {
      std::fprintf(stderr, "loadgen: preload did not finish (is the cluster "
                           "up?)\n");
      return 1;
    }
  }

  // --- offered-rate sweep -------------------------------------------------
  std::vector<bench::ScenarioResult> rows;
  std::int64_t total_measured = 0;
  for (double rate : rates) {
    bench::WallClock wall;
    client->set_rate(rate);
    pump_for(secs(warmup_s));
    client->begin_window(secs(window_s));
    pump_for(secs(window_s));
    client->end_window();
    pump_until([&] { return client->drained(); },
               opts.op_timeout + duration::seconds(1));
    bench::RatePoint point = client->take_point();
    rows.push_back(make_runtime_row(name, rings, label_threads, opts, point,
                                    opts.seed, wall.seconds()));
    total_measured += point.measured;
    std::printf("loadgen: rings=%d offered=%.0f/s goodput=%.0f/s p50=%.2fms "
                "p99=%.2fms p999=%.2fms timeouts=%lld\n",
                rings, point.offered_rate, point.goodput,
                point.latency.p50_ms(), point.latency.p99_ms(),
                point.latency.p999_ms(), (long long)point.timeouts);
    if (scrape) {
      std::map<std::string, double> samples;
      if (scrape_stage_metrics(cfg, &samples)) {
        add_stage_metrics(samples, &rows.back());
        std::printf("loadgen: server stages p50ms (cumulative) queue=%.2f "
                    "ring=%.2f merge=%.2f apply=%.2f total=%.2f traces=%.0f\n",
                    obs::metric_value(samples,
                                      "obs_stage_queue_ms{quantile=\"0.5\"}"),
                    obs::metric_value(samples,
                                      "obs_stage_ring_ms{quantile=\"0.5\"}"),
                    obs::metric_value(samples,
                                      "obs_stage_merge_ms{quantile=\"0.5\"}"),
                    obs::metric_value(samples,
                                      "obs_stage_apply_ms{quantile=\"0.5\"}"),
                    obs::metric_value(samples,
                                      "obs_stage_total_ms{quantile=\"0.5\"}"),
                    obs::metric_value(samples, "obs_stage_total_ms_count"));
      } else {
        std::fprintf(stderr, "loadgen: --scrape reached no metrics endpoint "
                             "(metrics_port in the config? daemons up?)\n");
      }
    }
    std::fflush(stdout);
  }
  client->stop_load();

  // --- artifact -----------------------------------------------------------
  json::Value doc = bench::bench_document("loadgen", opts.seed, smoke, rows);
  if (append) {
    std::string text;
    if (read_file(out_path, &text)) {
      json::Value old = json::Value::parse(text, &error);
      if (error.empty() && old.find("scenarios") != nullptr) {
        auto merged = json::Value::array();
        for (const auto& row : old.find("scenarios")->items()) {
          merged.push_back(row);
        }
        for (const auto& row : doc.find("scenarios")->items()) {
          merged.push_back(row);
        }
        doc.set("scenarios", std::move(merged));
        // A merged artifact is only a smoke artifact if every part was.
        const json::Value* old_smoke = old.find("smoke");
        doc.set("smoke",
                smoke && old_smoke != nullptr && old_smoke->as_bool());
      }
    }
  }
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out << doc.dump() << "\n";
  if (!out) {
    std::fprintf(stderr, "loadgen: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("loadgen: wrote %s (%zu rows)\n", out_path.c_str(),
              doc.find("scenarios")->size());
  return total_measured > 0 ? 0 : 2;
}
