// Chaos runner: long seed sweeps and single-seed replay over the chaos
// world configurations (src/chaos/worlds.h).
//
//   chaos_runner                         # default sweep: 100 seeds x all
//   chaos_runner --seeds 5000            # long sweep
//   chaos_runner --config kvstore        # one configuration only
//   chaos_runner --seed 1337             # replay one seed (prints timeline)
//   chaos_runner --start 1000 --seeds 500
//   chaos_runner --smoke                 # CI smoke: bounded seeds, fails
//                                        # fast, prints reproducing seed
//   chaos_runner --failure-log FILE      # also append every failure (replay
//                                        # command, violations, timeline) to
//                                        # FILE — uploaded as a CI artifact
//
// A failing run prints the configuration, the seed, every violated
// invariant, and the injected fault timeline; re-running with
// `--config <name> --seed <seed>` reproduces it bit-for-bit.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chaos/worlds.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: chaos_runner [--seeds N] [--start S] [--config NAME] "
               "[--seed SEED] [--smoke] [--verbose] [--failure-log FILE]\n");
  return 2;
}

/// Failure sink for CI: every block starts with a one-line REPLAY command
/// (grep '^REPLAY:' builds the step summary), followed by the violated
/// invariants and the full fault timeline.
FILE* failure_log = nullptr;

void print_failure(const amcast::chaos::WorldResult& r) {
  std::printf("\nFAIL config=%s seed=%llu (replay: chaos_runner --config %s "
              "--seed %llu)\n",
              r.config.c_str(), (unsigned long long)r.seed, r.config.c_str(),
              (unsigned long long)r.seed);
  for (const auto& v : r.violations) std::printf("  violation: %s\n", v.c_str());
  std::printf("  fault timeline:\n%s", r.fault_timeline.c_str());
  if (failure_log != nullptr) {
    std::fprintf(failure_log,
                 "REPLAY: ./build/bench/chaos_runner --config %s --seed %llu\n",
                 r.config.c_str(), (unsigned long long)r.seed);
    for (const auto& v : r.violations) {
      std::fprintf(failure_log, "violation: %s\n", v.c_str());
    }
    std::fprintf(failure_log, "fault timeline:\n%s\n",
                 r.fault_timeline.c_str());
    std::fflush(failure_log);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 100;
  std::uint64_t start = 1;
  std::uint64_t replay_seed = 0;
  bool replay = false;
  bool verbose = false;
  std::string config;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--seeds")) {
      seeds = std::strtoull(next("--seeds"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--start")) {
      start = std::strtoull(next("--start"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--config")) {
      config = next("--config");
    } else if (!std::strcmp(argv[i], "--seed")) {
      replay_seed = std::strtoull(next("--seed"), nullptr, 10);
      replay = true;
    } else if (!std::strcmp(argv[i], "--smoke")) {
      seeds = 13;  // x4 configs ~= 50 worlds, well under a CI minute
    } else if (!std::strcmp(argv[i], "--verbose")) {
      verbose = true;
    } else if (!std::strcmp(argv[i], "--failure-log")) {
      const char* path = next("--failure-log");
      failure_log = std::fopen(path, "w");
      if (failure_log == nullptr) {
        std::fprintf(stderr, "cannot open failure log %s\n", path);
        return 2;
      }
    } else {
      return usage();
    }
  }

  const auto& all = amcast::chaos::worlds();
  std::vector<amcast::chaos::WorldConfig> selected;
  for (const auto& w : all) {
    if (config.empty() || config == w.name) selected.push_back(w);
  }
  if (selected.empty()) {
    std::fprintf(stderr, "unknown config '%s' (have:", config.c_str());
    for (const auto& w : all) std::fprintf(stderr, " %s", w.name);
    std::fprintf(stderr, ")\n");
    return 2;
  }

  if (replay) {
    int failures = 0;
    for (const auto& w : selected) {
      auto r = w.run(replay_seed);
      std::printf("config=%-12s seed=%llu faults=%lld deliveries=%lld "
                  "epochs=%lld hash=%016llx %s\n",
                  r.config.c_str(), (unsigned long long)r.seed,
                  (long long)r.faults, (long long)r.deliveries,
                  (long long)r.epoch_installs,
                  (unsigned long long)r.transcript_hash,
                  r.ok() ? "OK" : "FAIL");
      std::printf("fault timeline:\n%s", r.fault_timeline.c_str());
      if (!r.ok()) {
        print_failure(r);
        ++failures;
      }
    }
    return failures == 0 ? 0 : 1;
  }

  int failures = 0;
  for (const auto& w : selected) {
    std::int64_t deliveries = 0;
    std::int64_t faults = 0;
    int config_failures = 0;
    for (std::uint64_t s = start; s < start + seeds; ++s) {
      auto r = w.run(s);
      deliveries += r.deliveries;
      faults += r.faults;
      if (verbose) {
        std::printf("config=%-12s seed=%llu faults=%lld deliveries=%lld %s\n",
                    r.config.c_str(), (unsigned long long)s,
                    (long long)r.faults, (long long)r.deliveries,
                    r.ok() ? "OK" : "FAIL");
      }
      if (!r.ok()) {
        print_failure(r);
        ++failures;
        ++config_failures;
      }
    }
    std::printf("%-12s %llu seeds: %d failures, %lld faults injected, "
                "%lld deliveries checked\n",
                w.name, (unsigned long long)seeds, config_failures,
                (long long)faults, (long long)deliveries);
  }
  if (failures > 0) {
    std::printf("\n%d failing seed(s); replay with --config <name> --seed "
                "<seed>\n",
                failures);
    return 1;
  }
  return 0;
}
