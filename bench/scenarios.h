// The perf-suite scenario matrix: every scenario builds a deployment,
// applies the shared measurement protocol (fixed warmup then a fixed
// measurement window, both on sim time; throughput plus latency percentiles
// from common/histogram), and returns BENCH_*.json rows (bench_util.h
// schema). Shared by bench/perf_suite (the driver binary, CI perf gate) and
// tests/perf_suite_test (schema completeness + same-seed reproducibility).
//
// Scenario catalogue:
//   single_ring_saturation  one ring of 3 co-located nodes at closed-loop
//                           saturation, per value size
//   multi_ring_scaling      aggregate throughput as rings grow 1..8 on the
//                           same 3 machines (paper Figs. 6-7 shape)
//   value_batching          coordinator value batching sweep (paper §4)
//   ycsb_uniform            YCSB A on MRP-Store, uniform key distribution
//   ycsb_zipf               YCSB A on MRP-Store, zipfian key distribution
//   dlog_append_read        dLog 90/10 append/read mix, 2 logs + shared ring
//   checkpoint_recovery     MRP-Store replica crash/restart; recovery time
//
// Every row's metrics include `rate_per_s` (the CI-gated throughput),
// sim-time latency percentiles where a latency histogram exists, and
// `wall_s` (host wall clock, informational; see bench_util.h).
#pragma once

#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace amcast::bench {

struct SuiteOptions {
  /// Shrinks the matrix and the windows for the CI gate (< 2 min total).
  bool smoke = false;
  /// Sim seed: every scenario builds its simulation(s) from this seed
  /// verbatim (rows within a scenario differ by parameters, not seeds) and
  /// stamps it on each emitted row.
  std::uint64_t seed = 42;
  /// Override the per-scenario warmup/measurement windows (0 = scenario
  /// default). Used by the ctest reproducibility test to run tiny cells.
  Duration warmup_override = 0;
  Duration window_override = 0;
};

struct Scenario {
  const char* name;
  const char* what;  ///< one-line description for --list
  std::vector<ScenarioResult> (*run)(const SuiteOptions&);
};

/// All registered scenarios, in stable execution order.
const std::vector<Scenario>& scenarios();

/// Runs one scenario by name; empty result if the name is unknown.
std::vector<ScenarioResult> run_scenario(const std::string& name,
                                         const SuiteOptions& opts);

}  // namespace amcast::bench
