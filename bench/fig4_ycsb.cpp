// Figure 4 reproduction: YCSB comparison of Cassandra-like EventualStore,
// MRP-Store (independent rings), MRP-Store (global ring), and a MySQL-like
// single-node store.
//
// Paper setup (§8.3.2): workloads A-F with 100 client threads; MRP-Store
// with three partitions, three acceptors per ring, async disk writes;
// Cassandra with three partitions and replication factor three; MySQL on a
// single server; 1 GB initial database. We scale the database to 100k
// 1 KB records (0.1 GB) to keep the simulated heap small — distribution
// skew and the ops/s ratios between systems are unaffected.
#include <memory>

#include "baselines/eventual.h"
#include "baselines/single_node.h"
#include "bench/bench_util.h"
#include "kvstore/deployment.h"
#include "ycsb/workload.h"

namespace amcast {
namespace {

constexpr std::uint64_t kRecords = 100'000;
constexpr std::size_t kValueBytes = 1024;
constexpr int kThreads = 100;
const Duration kWarmup = duration::seconds(1);
const Duration kWindow = duration::seconds(4);

struct Cell {
  double ops = 0;
  double read_ms = 0, update_ms = 0, rmw_ms = 0;
};

kvstore::KvClient::Generator wrap(std::shared_ptr<ycsb::Generator> gen) {
  return [gen](int thread, Rng& rng) { return gen->next(thread, rng); };
}

Cell measure(sim::Simulation& sim, std::int64_t completed0,
             std::function<std::int64_t()> completed,
             const std::string& prefix) {
  Cell c;
  c.ops = bench::rate(completed() - completed0, kWindow);
  auto& m = sim.metrics();
  c.read_ms = m.histogram(prefix + ".latency.read").mean_ms();
  c.update_ms = m.histogram(prefix + ".latency.update").mean_ms();
  c.rmw_ms = c.read_ms + c.update_ms;  // YCSB F: rmw = chained read+update
  return c;
}

Cell run_mrp(ycsb::Workload w, bool global_ring) {
  kvstore::KvDeploymentSpec spec;
  spec.partitions = 3;
  spec.replicas_per_partition = 3;  // rings of three acceptors (co-located)
  spec.partitioner = kvstore::Partitioner::hash(3);
  spec.global_ring = global_ring;
  spec.storage = ringpaxos::StorageOptions::Mode::kAsyncDisk;
  spec.disk = sim::Presets::hdd();
  spec.lambda = 9000;
  kvstore::KvDeployment d(spec);
  d.preload(kRecords, kValueBytes, ycsb::Generator::key_of);

  auto gen = std::make_shared<ycsb::Generator>(
      ycsb::WorkloadSpec::standard(w), kRecords, kValueBytes, kThreads);
  auto& client = d.add_client(kThreads, wrap(gen));

  d.sim().run_until(kWarmup);
  for (const char* h : {"kv.latency.read", "kv.latency.update"}) {
    if (d.sim().metrics().has_histogram(h)) {
      d.sim().metrics().histogram(h).clear();
    }
  }
  std::int64_t c0 = client.completed();
  d.sim().run_until(kWarmup + kWindow);
  return measure(d.sim(), c0, [&] { return client.completed(); }, "kv");
}

Cell run_cassandra(ycsb::Workload w) {
  sim::Simulation sim(21);
  auto part = kvstore::Partitioner::hash(3);
  // 3 partitions x RF 3, first replica of each partition serves requests.
  std::vector<ProcessId> heads;
  std::vector<std::vector<baselines::EvReplica*>> reps(3);
  std::vector<std::vector<ProcessId>> ids(3);
  for (int p = 0; p < 3; ++p) {
    for (int r = 0; r < 3; ++r) {
      auto n = std::make_unique<baselines::EvReplica>(p, part);
      reps[std::size_t(p)].push_back(n.get());
      ids[std::size_t(p)].push_back(sim.add_node(std::move(n)));
    }
    heads.push_back(ids[std::size_t(p)][0]);
    for (int r = 0; r < 3; ++r) {
      std::vector<ProcessId> peers;
      for (int q = 0; q < 3; ++q) {
        if (q != r) peers.push_back(ids[std::size_t(p)][std::size_t(q)]);
      }
      reps[std::size_t(p)][std::size_t(r)]->set_peers(peers);
    }
  }
  for (std::uint64_t i = 0; i < kRecords; ++i) {
    std::string key = ycsb::Generator::key_of(i);
    int p = part.locate(key);
    for (auto* r : reps[std::size_t(p)]) r->preload(key, kValueBytes);
  }

  auto gen = std::make_shared<ycsb::Generator>(
      ycsb::WorkloadSpec::standard(w), kRecords, kValueBytes, kThreads);
  baselines::EvClient::Options co;
  co.threads = kThreads;
  co.partitioner = part;
  co.partition_heads = heads;
  auto client = std::make_unique<baselines::EvClient>(co, wrap(gen));
  auto* cp = client.get();
  sim.add_node(std::move(client));

  sim.run_until(kWarmup);
  std::int64_t c0 = cp->completed();
  sim.run_until(kWarmup + kWindow);
  return measure(sim, c0, [cp] { return cp->completed(); }, "cassandra");
}

Cell run_mysql(ycsb::Workload w) {
  sim::Simulation sim(22);
  auto server = std::make_unique<baselines::SnServer>();
  server->add_disk(sim::Presets::hdd());
  for (std::uint64_t i = 0; i < kRecords; ++i) {
    server->preload(ycsb::Generator::key_of(i), kValueBytes);
  }
  ProcessId sid = sim.add_node(std::move(server));

  auto gen = std::make_shared<ycsb::Generator>(
      ycsb::WorkloadSpec::standard(w), kRecords, kValueBytes, kThreads);
  baselines::SnClient::Options co;
  co.threads = kThreads;
  co.server = sid;
  auto client = std::make_unique<baselines::SnClient>(
      co, [gen](int t, Rng& rng) { return gen->next(t, rng); });
  auto* cp = client.get();
  sim.add_node(std::move(client));

  sim.run_until(kWarmup);
  std::int64_t c0 = cp->completed();
  sim.run_until(kWarmup + kWindow);
  return measure(sim, c0, [cp] { return cp->completed(); }, "mysql");
}

}  // namespace
}  // namespace amcast

int main() {
  using namespace amcast;
  bench::banner(
      "Figure 4 — YCSB: Cassandra vs MRP-Store (x2) vs MySQL",
      "Benz et al., MIDDLEWARE'14, Figure 4",
      "workloads A-F, 100 client threads, 3 partitions, RF=3, async disk; "
      "database scaled to 100k x 1 KB records (see EXPERIMENTS.md)");

  const ycsb::Workload all[] = {ycsb::Workload::A, ycsb::Workload::B,
                                ycsb::Workload::C, ycsb::Workload::D,
                                ycsb::Workload::E, ycsb::Workload::F};

  TextTable t({"workload", "Cassandra", "MRP-Store (indep.)", "MRP-Store",
               "MySQL"});
  Cell f_indep{}, f_global{}, f_cass{}, f_sql{};
  for (auto w : all) {
    Cell cass = run_cassandra(w);
    Cell indep = run_mrp(w, /*global_ring=*/false);
    Cell global = run_mrp(w, /*global_ring=*/true);
    Cell sql = run_mysql(w);
    t.add_row({ycsb::workload_name(w), TextTable::num(cass.ops, 0),
               TextTable::num(indep.ops, 0), TextTable::num(global.ops, 0),
               TextTable::num(sql.ops, 0)});
    if (w == ycsb::Workload::F) {
      f_cass = cass;
      f_indep = indep;
      f_global = global;
      f_sql = sql;
    }
  }
  t.print("YCSB throughput, ops/s (100 threads)  [paper: Fig. 4 top]");

  TextTable lt({"latency (ms)", "Cassandra", "MRP-Store (indep.)", "MRP-Store",
                "MySQL"});
  lt.add_row({"Read", TextTable::num(f_cass.read_ms, 2),
              TextTable::num(f_indep.read_ms, 2),
              TextTable::num(f_global.read_ms, 2),
              TextTable::num(f_sql.read_ms, 2)});
  lt.add_row({"Update", TextTable::num(f_cass.update_ms, 2),
              TextTable::num(f_indep.update_ms, 2),
              TextTable::num(f_global.update_ms, 2),
              TextTable::num(f_sql.update_ms, 2)});
  lt.add_row({"Read-Mod-Write", TextTable::num(f_cass.rmw_ms, 2),
              TextTable::num(f_indep.rmw_ms, 2),
              TextTable::num(f_global.rmw_ms, 2),
              TextTable::num(f_sql.rmw_ms, 2)});
  lt.print("Workload F latency breakdown  [paper: Fig. 4 bottom]");
  return 0;
}
