// Ablation A2: rate leveling on/off (paper §4).
//
// Two rings, only one loaded. With λ=0 the idle ring produces no instances
// and the deterministic merge stalls; with λ>0 the coordinator tops the
// idle ring up with skips and delivery proceeds with bounded delay. Sweeps
// λ and reports delivered values + delivery latency.
#include <memory>

#include "bench/bench_util.h"
#include "bench/driver.h"

namespace amcast {
namespace {

using bench::LoadDriver;
using ringpaxos::ConfigRegistry;
using ringpaxos::RingOptions;

struct Result {
  std::int64_t delivered;
  double lat_ms;
  std::int64_t skips;
};

Result run(double lambda) {
  sim::Simulation sim(5);
  ConfigRegistry registry;
  std::vector<LoadDriver*> nodes;
  std::vector<ProcessId> ids;
  for (int i = 0; i < 3; ++i) {
    auto n = std::make_unique<LoadDriver>(registry, /*threads=*/8,
                                          /*value_bytes=*/1024);
    nodes.push_back(n.get());
    ids.push_back(sim.add_node(std::move(n)));
  }
  GroupId r1 = registry.create_ring(ids, ids, ids[0]);
  GroupId r2 = registry.create_ring(ids, ids, ids[1]);
  RingOptions ro;
  ro.lambda = lambda;
  ro.delta = duration::milliseconds(5);
  for (auto* n : nodes) {
    n->subscribe(r1, ro);
    n->subscribe(r2, ro);
  }
  nodes[0]->start_load(r1);  // ring 2 stays idle

  sim.run_until(duration::seconds(1));
  sim.metrics().histogram(bench::kLatencyHist).clear();
  std::int64_t d0 = nodes[2]->deliveries();
  sim.run_until(duration::seconds(3));

  Result r{};
  r.delivered = nodes[2]->deliveries() - d0;
  r.lat_ms = sim.metrics().histogram(bench::kLatencyHist).mean_ms();
  r.skips = nodes[2]->ring_counters(r2).skipped_instances;
  return r;
}

}  // namespace
}  // namespace amcast

int main() {
  using namespace amcast;
  bench::banner("Ablation A2 — rate leveling (λ sweep, ∆=5 ms)",
                "paper §4: skips keep slow rings from stalling the merge",
                "2 rings x 3 nodes; ring 1 loaded (8 closed-loop threads, "
                "1 KB), ring 2 idle");
  TextTable t({"lambda", "values delivered (2s)", "mean latency ms",
               "skip instances"});
  for (double l : {0.0, 100.0, 1000.0, 9000.0}) {
    auto r = run(l);
    t.add_row({TextTable::num(l, 0), TextTable::integer(r.delivered),
               r.delivered ? TextTable::num(r.lat_ms, 2) : "stalled",
               TextTable::integer(r.skips)});
  }
  t.print("Delivery vs rate-leveling λ");
  std::printf("\nExpected: λ=0 stalls (idle ring never ticks). λ>0 restores\n"
              "delivery; higher λ lowers latency until the ∆-quantum floor.\n");
  return 0;
}
