// Ablation A2: rate leveling on/off (paper §4).
//
// Two rings, only one loaded. With λ=0 the idle ring produces no instances
// and the deterministic merge stalls; with λ>0 the coordinator tops the
// idle ring up with skips and delivery proceeds with bounded delay. Sweeps
// λ and reports delivered values + delivery latency.
#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "core/multicast.h"

namespace amcast {
namespace {

using core::MulticastNode;
using ringpaxos::ConfigRegistry;
using ringpaxos::RingOptions;

class Driver final : public MulticastNode {
 public:
  explicit Driver(ConfigRegistry& reg) : MulticastNode(reg) {}
  void start_load(GroupId g, int threads) {
    group_ = g;
    for (int t = 0; t < threads; ++t) issue();
  }
  std::int64_t delivered = 0;

 protected:
  void on_deliver(GroupId g, const ringpaxos::ValuePtr& v) override {
    ++delivered;
    if (v->origin == id()) {
      auto it = outstanding_.find(v->msg_id);
      if (it != outstanding_.end()) {
        sim().metrics().histogram("rl.latency").record_duration(now() -
                                                                it->second);
        outstanding_.erase(it);
        issue();
      }
    }
    MulticastNode::on_deliver(g, v);
  }

 private:
  void issue() {
    MessageId mid = multicast(group_, 1024);
    outstanding_[mid] = now();
  }
  GroupId group_ = kInvalidGroup;
  std::map<MessageId, Time> outstanding_;
};

struct Result {
  std::int64_t delivered;
  double lat_ms;
  std::int64_t skips;
};

Result run(double lambda) {
  sim::Simulation sim(5);
  ConfigRegistry registry;
  std::vector<Driver*> nodes;
  std::vector<ProcessId> ids;
  for (int i = 0; i < 3; ++i) {
    auto n = std::make_unique<Driver>(registry);
    nodes.push_back(n.get());
    ids.push_back(sim.add_node(std::move(n)));
  }
  GroupId r1 = registry.create_ring(ids, ids, ids[0]);
  GroupId r2 = registry.create_ring(ids, ids, ids[1]);
  RingOptions ro;
  ro.lambda = lambda;
  ro.delta = duration::milliseconds(5);
  for (auto* n : nodes) {
    n->subscribe(r1, ro);
    n->subscribe(r2, ro);
  }
  nodes[0]->start_load(r1, 8);  // ring 2 stays idle

  sim.run_until(duration::seconds(1));
  sim.metrics().histogram("rl.latency").clear();
  std::int64_t d0 = nodes[2]->delivered;
  sim.run_until(duration::seconds(3));

  Result r{};
  r.delivered = nodes[2]->delivered - d0;
  r.lat_ms = sim.metrics().histogram("rl.latency").mean_ms();
  r.skips = nodes[2]->ring_counters(r2).skipped_instances;
  return r;
}

}  // namespace
}  // namespace amcast

int main() {
  using namespace amcast;
  bench::banner("Ablation A2 — rate leveling (λ sweep, ∆=5 ms)",
                "paper §4: skips keep slow rings from stalling the merge",
                "2 rings x 3 nodes; ring 1 loaded (8 closed-loop threads, "
                "1 KB), ring 2 idle");
  TextTable t({"lambda", "values delivered (2s)", "mean latency ms",
               "skip instances"});
  for (double l : {0.0, 100.0, 1000.0, 9000.0}) {
    auto r = run(l);
    t.add_row({TextTable::num(l, 0), TextTable::integer(r.delivered),
               r.delivered ? TextTable::num(r.lat_ms, 2) : "stalled",
               TextTable::integer(r.skips)});
  }
  t.print("Delivery vs rate-leveling λ");
  std::printf("\nExpected: λ=0 stalls (idle ring never ticks). λ>0 restores\n"
              "delivery; higher λ lowers latency until the ∆-quantum floor.\n");
  return 0;
}
