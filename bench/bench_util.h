// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/metrics.h"
#include "common/table.h"
#include "sim/simulation.h"

namespace amcast::bench {

/// Prints the standard banner so every run is self-describing.
inline void banner(const std::string& what, const std::string& paper_ref,
                   const std::string& setup) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", what.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Setup: %s\n", setup.c_str());
  std::printf("================================================================\n");
  std::fflush(stdout);
}

/// Runs the simulation for `warmup`, clears the named histograms/series so
/// steady-state numbers exclude ramp-up, then runs the measurement window.
inline void run_with_warmup(sim::Simulation& sim, Duration warmup,
                            Duration window,
                            const std::vector<std::string>& reset_hists = {}) {
  sim.run_until(sim.now() + warmup);
  for (const auto& h : reset_hists) {
    if (sim.metrics().has_histogram(h)) sim.metrics().histogram(h).clear();
  }
  sim.run_until(sim.now() + window);
}

/// Formats a latency CDF (a few salient points) as table rows.
inline void print_cdf(const Histogram& h, const std::string& title) {
  TextTable t({"percentile", "latency_ms"});
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    t.add_row({TextTable::num(q * 100, 0),
               TextTable::num(double(h.percentile(q)) * 1e-6, 2)});
  }
  t.print(title);
}

/// ops/s measured over a window.
inline double rate(std::int64_t ops, Duration window) {
  return double(ops) / duration::to_seconds(window);
}

}  // namespace amcast::bench
