// Shared helpers for the figure/table reproduction benches and the perf
// suite, including the BENCH_*.json artifact schema.
//
// ## BENCH_*.json schema (version "amcast-bench-v1")
//
// Every machine-readable benchmark artifact is one JSON object:
//
//   {
//     "schema":    "amcast-bench-v1",
//     "suite":     "perf_suite",            // emitting program
//     "git":       "f2afd7f",               // `git describe --always --dirty`
//     "seed":      42,                      // base sim seed of the run
//     "smoke":     false,                   // reduced CI matrix?
//     "scenarios": [
//       {
//         "name":    "single_ring_saturation",
//         "seed":    42,                    // sim seed this row ran under
//                                           // (the suite seed, verbatim;
//                                           // must be <= 2^53 — JSON
//                                           // numbers are doubles)
//         "params":  { "nodes": 3, "value_bytes": 128, ... },
//         "metrics": {
//           "rate_per_s": 123456.0,         // THE gated throughput metric
//           "p50_ms": 0.81, "p99_ms": 2.4,  // sim-time latency percentiles
//           ...,                            // scenario-specific extras
//           "wall_s": 1.7                   // host wall clock (informational)
//         }
//       }, ...
//     ]
//   }
//
// Two metric domains coexist deliberately:
//  * sim-domain metrics (rate_per_s, p50_ms, p99_ms, ...) are measured on
//    VIRTUAL time against the simulator's CPU/network/disk cost models.
//    They are bit-deterministic for a given seed and code version, so the
//    CI perf gate compares rate_per_s against bench/baseline.json with a
//    tolerance that only real protocol/model regressions can exceed.
//  * wall_s is HOST wall clock per scenario row. It is where C++-level
//    hot-path optimizations show up (the simulator charges modeled CPU, so
//    they cannot move sim-domain numbers), and it is machine-dependent —
//    reported for before/after comparisons, never gated.
//
// ## Runtime-domain rows (BENCH_runtime.json, emitted by bench/loadgen)
//
// The same "amcast-bench-v1" document shape also carries REAL measurements
// of a deployed amcast_noded cluster driven by the open-loop load
// generator. A runtime row's identity params additionally include the
// offered load point, and its metrics are host wall-clock measurements:
//
//   "params":  { "rings": 2, "offered_rate": 4000, "sessions": 1000,
//                "get_ratio": 0.5, "value_bytes": 128,
//                "key_dist": "uniform", ... }
//   "metrics": {
//     "offered_rate": 4000.0,     // arrivals/s the Poisson schedule aimed at
//     "goodput": 3961.2,          // THE gated metric: completions/s observed
//                                 // during the measurement window
//     "p50_ms": 1.9, "p99_ms": 7.4, "p999_ms": 21.0,
//                                 // latency from INTENDED send time, so a
//                                 // stalled client still charges the stall
//                                 // to the tail (coordinated omission)
//     "timeouts": 0, "completed": 11883, "window_s": 3.0
//   }
//
// Runtime rows are wall-clock on a shared machine, not deterministic: the
// runtime gate (scripts/runtime_bench.sh --gate) is correspondingly wide
// (default +/-50% on goodput vs bench/baseline_runtime.json) and exists to
// catch collapses, not single-digit regressions.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/table.h"
#include "sim/simulation.h"

namespace amcast::bench {

/// Schema version tag; bump when the document layout changes shape.
inline constexpr const char* kBenchSchema = "amcast-bench-v1";

/// `git describe --always --dirty` of the working tree, or "unknown" when
/// git/repo information is unavailable (e.g. a tarball build).
inline std::string git_describe() {
  std::string out = "unknown";
  if (FILE* p = popen("git describe --always --dirty 2>/dev/null", "r")) {
    char buf[128];
    if (std::fgets(buf, sizeof(buf), p) != nullptr) {
      std::string s(buf);
      while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
      if (!s.empty()) out = s;
    }
    pclose(p);
  }
  return out;
}

/// One row of a BENCH_*.json "scenarios" array.
struct ScenarioResult {
  std::string name;
  std::uint64_t seed = 0;
  json::Value params = json::Value::object();
  json::Value metrics = json::Value::object();

  json::Value to_json() const {
    auto v = json::Value::object();
    v.set("name", name);
    v.set("seed", seed);
    v.set("params", params);
    v.set("metrics", metrics);
    return v;
  }
};

/// Assembles the top-level BENCH_*.json document.
inline json::Value bench_document(const std::string& suite, std::uint64_t seed,
                                  bool smoke,
                                  const std::vector<ScenarioResult>& rows) {
  auto doc = json::Value::object();
  doc.set("schema", kBenchSchema);
  doc.set("suite", suite);
  doc.set("git", git_describe());
  doc.set("seed", seed);
  doc.set("smoke", smoke);
  auto arr = json::Value::array();
  for (const auto& r : rows) arr.push_back(r.to_json());
  doc.set("scenarios", std::move(arr));
  return doc;
}

/// Host wall-clock stopwatch for the informational wall_s metric.
class WallClock {
 public:
  WallClock() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Prints the standard banner so every run is self-describing.
inline void banner(const std::string& what, const std::string& paper_ref,
                   const std::string& setup) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", what.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Setup: %s\n", setup.c_str());
  std::printf("================================================================\n");
  std::fflush(stdout);
}

/// Runs the simulation for `warmup`, clears the named histograms/series so
/// steady-state numbers exclude ramp-up, then runs the measurement window.
inline void run_with_warmup(sim::Simulation& sim, Duration warmup,
                            Duration window,
                            const std::vector<std::string>& reset_hists = {}) {
  sim.run_until(sim.now() + warmup);
  for (const auto& h : reset_hists) {
    if (sim.metrics().has_histogram(h)) sim.metrics().histogram(h).clear();
  }
  sim.run_until(sim.now() + window);
}

/// Formats a latency CDF (a few salient points) as table rows.
inline void print_cdf(const Histogram& h, const std::string& title) {
  TextTable t({"percentile", "latency_ms"});
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    t.add_row({TextTable::num(q * 100, 0),
               TextTable::num(double(h.percentile(q)) * 1e-6, 2)});
  }
  t.print(title);
}

/// ops/s measured over a window.
inline double rate(std::int64_t ops, Duration window) {
  return double(ops) / duration::to_seconds(window);
}

/// Writes the standard latency keys (p50/p99/p999, mean) of a nanosecond
/// histogram into a metrics object. Shared by sim- and runtime-domain rows.
inline void set_latency_metrics(json::Value& metrics, const Histogram& h) {
  metrics.set("mean_ms", h.mean_ms());
  metrics.set("p50_ms", h.p50_ms());
  metrics.set("p99_ms", h.p99_ms());
  metrics.set("p999_ms", h.p999_ms());
}

}  // namespace amcast::bench
