// Micro-benchmarks (google-benchmark) for the hot paths underneath the
// figures: codec, workload generators, histogram, store apply, storage log.
#include <benchmark/benchmark.h>

#include "common/histogram.h"
#include "common/strings.h"
#include "common/zipf.h"
#include "kvstore/command.h"
#include "kvstore/store.h"
#include "ringpaxos/storage.h"
#include "ycsb/workload.h"

namespace amcast {
namespace {

void BM_CommandEncode(benchmark::State& state) {
  kvstore::Command c;
  c.op = kvstore::Op::kUpdate;
  c.key = "user000000004242";
  c.value.assign(std::size_t(state.range(0)), 7);
  kvstore::CommandBatch b;
  for (int i = 0; i < 32; ++i) b.commands.push_back(c);
  for (auto _ : state) {
    auto bytes = b.encode();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(b.encoded_size()));
}
BENCHMARK(BM_CommandEncode)->Arg(128)->Arg(1024);

void BM_CommandDecode(benchmark::State& state) {
  kvstore::Command c;
  c.op = kvstore::Op::kUpdate;
  c.key = "user000000004242";
  c.value.assign(std::size_t(state.range(0)), 7);
  kvstore::CommandBatch b;
  for (int i = 0; i < 32; ++i) b.commands.push_back(c);
  auto bytes = b.encode();
  for (auto _ : state) {
    auto back = kvstore::CommandBatch::decode(bytes);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(bytes.size()));
}
BENCHMARK(BM_CommandDecode)->Arg(128)->Arg(1024);

void BM_Zipfian(benchmark::State& state) {
  ZipfianGenerator z(std::uint64_t(state.range(0)));
  Rng rng(3);
  for (auto _ : state) benchmark::DoNotOptimize(z.next(rng));
}
BENCHMARK(BM_Zipfian)->Arg(100000)->Arg(10000000);

void BM_ScrambledZipfian(benchmark::State& state) {
  ScrambledZipfianGenerator z(1000000);
  Rng rng(3);
  for (auto _ : state) benchmark::DoNotOptimize(z.next(rng));
}
BENCHMARK(BM_ScrambledZipfian);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.record(std::int64_t(v));
    v = v * 2862933555777941757ULL + 3037000493ULL;
    v >>= 34;  // spread across buckets
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_YcsbNext(benchmark::State& state) {
  ycsb::Generator gen(
      ycsb::WorkloadSpec::standard(ycsb::Workload::A), 100000, 1024, 1);
  Rng rng(4);
  for (auto _ : state) benchmark::DoNotOptimize(gen.next(0, rng));
}
BENCHMARK(BM_YcsbNext);

void BM_StoreApply(benchmark::State& state) {
  kvstore::KvStore s;
  for (int i = 0; i < 100000; ++i) {
    s.insert(str_cat("k", std::to_string(i)), std::vector<std::uint8_t>(64, 0));
  }
  kvstore::Command c;
  c.op = kvstore::Op::kRead;
  Rng rng(9);
  for (auto _ : state) {
    c.key = str_cat("k", std::to_string(rng.next_u64(100000)));
    benchmark::DoNotOptimize(s.apply(c));
  }
}
BENCHMARK(BM_StoreApply);

void BM_AcceptorLogStoreAndTrim(benchmark::State& state) {
  using namespace ringpaxos;
  StorageOptions opts;
  opts.mode = StorageOptions::Mode::kMemory;
  opts.memory_slots = 15000;
  for (auto _ : state) {
    AcceptorStorage st(opts, nullptr);
    for (InstanceId i = 0; i < 4096; ++i) {
      st.store_vote(i, 1, 1, make_skip(0, 0, 1), [] {});
      st.mark_decided(i, 1, 0);
    }
    st.trim(2047);
    benchmark::DoNotOptimize(st.entry_count());
  }
}
BENCHMARK(BM_AcceptorLogStoreAndTrim);

}  // namespace
}  // namespace amcast

BENCHMARK_MAIN();
