// Figure 7 reproduction: horizontal scalability of MRP-Store across EC2
// regions.
//
// Paper setup (§8.4.2): regions eu-west-1, us-west-1, us-east-1, us-west-2.
// Each region hosts one ring (three proposers/acceptors + one replica) and
// one client; all replicas also form a global ring. Clients send 1 KB
// update commands to their local partition only, batched into 32 KB
// packets. M=1, ∆=20 ms, λ=2000 (§8.2, across datacenters). Reported:
// aggregate throughput for 1..4 regions (with %-of-linear) and the latency
// CDF measured in us-west-2.
#include "bench/bench_util.h"
#include "common/strings.h"
#include "kvstore/deployment.h"

namespace amcast {
namespace {

struct RunResult {
  double total_ops = 0;
  std::vector<double> per_region_ops;
  Histogram latency_last_region;
};

RunResult run(int regions) {
  kvstore::KvDeploymentSpec spec;
  spec.partitions = regions;
  spec.replicas_per_partition = 1;  // one replica per region (paper)
  spec.dedicated_acceptors = 3;     // three proposers/acceptors per region
  spec.global_ring = true;  // present even with one region (local then)
  // Region r owns keys with prefix "r<r>-..." via range partitioning.
  if (regions > 1) {
    std::vector<std::string> bounds;
    for (int r = 0; r + 1 < regions; ++r) {
      bounds.push_back(str_cat("r", std::to_string(r), "~"));  // '~' > digits/letters
    }
    spec.partitioner = kvstore::Partitioner::range(bounds);
  } else {
    spec.partitioner = kvstore::Partitioner::hash(1);
  }
  spec.storage = ringpaxos::StorageOptions::Mode::kAsyncDisk;
  spec.disk = sim::Presets::ssd();  // EC2 large instances: local SSD
  spec.m = 1;
  spec.delta = duration::milliseconds(20);  // paper §8.2 (WAN)
  spec.lambda = 2000;
  spec.topology = sim::Topology::ec2_four_regions();
  for (int r = 0; r < regions; ++r) spec.partition_regions.push_back(r);
  kvstore::KvDeployment d(spec);

  // One client machine per region, issuing 1 KB updates on local keys,
  // batched into 32 KB packets.
  std::vector<kvstore::KvClient*> clients;
  for (int r = 0; r < regions; ++r) {
    std::string prefix = str_cat("r", std::to_string(r), "-key");
    auto gen = [prefix](int, Rng& rng) {
      kvstore::Command c;
      c.op = kvstore::Op::kUpdate;
      c.key = prefix + std::to_string(rng.next_u64(1000));
      c.value.assign(1024, 0);
      return c;
    };
    // 1200 worker threads with 1 s think time per region: a near-constant
    // offered load that does not collapse when WAN latency grows (the
    // paper's client concurrency is unspecified; see EXPERIMENTS.md).
    clients.push_back(&d.add_client(1200, gen, r, /*batch_bytes=*/32 * 1024,
                                    "kv.r" + std::to_string(r),
                                    duration::seconds(1)));
  }

  // Preload the keyspace so updates hit existing entries.
  d.preload(1000 * std::uint64_t(regions), 1024, [regions](std::uint64_t i) {
    int r = int(i % std::uint64_t(regions));
    return str_cat("r", std::to_string(r), "-key",
                   std::to_string(i / std::uint64_t(regions)));
  });

  const Duration warmup = duration::seconds(4);
  const Duration window = duration::seconds(8);
  d.sim().run_until(warmup);
  std::vector<std::int64_t> c0;
  for (int r = 0; r < regions; ++r) {
    c0.push_back(clients[std::size_t(r)]->completed());
    d.sim()
        .metrics()
        .histogram("kv.r" + std::to_string(r) + ".latency")
        .clear();
  }
  d.sim().run_until(warmup + window);

  RunResult res;
  for (int r = 0; r < regions; ++r) {
    double ops = bench::rate(
        clients[std::size_t(r)]->completed() - c0[std::size_t(r)], window);
    res.per_region_ops.push_back(ops);
    res.total_ops += ops;
  }
  res.latency_last_region = d.sim().metrics().histogram(
      "kv.r" + std::to_string(regions - 1) + ".latency");
  return res;
}

}  // namespace
}  // namespace amcast

int main() {
  using namespace amcast;
  bench::banner(
      "Figure 7 — MRP-Store horizontal scalability across EC2 regions",
      "Benz et al., MIDDLEWARE'14, Figure 7",
      "1..4 regions (eu-west-1, us-west-1, us-east-1, us-west-2); per-region "
      "ring (3 acceptors + replica) + global ring; 1 KB local updates "
      "batched to 32 KB; M=1, delta=20ms, lambda=2000");

  const char* region_names[] = {"eu-west-1", "us-east-1", "us-west-1",
                                "us-west-2"};
  TextTable t({"regions", "eu-west-1", "us-east-1", "us-west-1", "us-west-2",
               "aggregate ops/s", "vs linear"});
  double base = 0;
  Histogram last_cdf;
  for (int k = 1; k <= 4; ++k) {
    auto r = run(k);
    std::vector<std::string> row{TextTable::integer(k)};
    for (int i = 0; i < 4; ++i) {
      row.push_back(i < k ? TextTable::num(r.per_region_ops[std::size_t(i)], 0)
                          : "-");
    }
    row.push_back(TextTable::num(r.total_ops, 0));
    if (k == 1) {
      base = r.total_ops;
      row.push_back("100%");
    } else {
      row.push_back(TextTable::num(r.total_ops / (base * k) * 100, 0) + "%");
    }
    t.add_row(row);
    if (k == 4) last_cdf = r.latency_last_region;
    (void)region_names;
  }
  t.print("Aggregate MRP-Store throughput (ops/s)  [paper: Fig. 7 top]");
  bench::print_cdf(last_cdf,
                   "Update latency CDF at us-west-2, 4 regions  [paper: Fig. 7 bottom]");
  return 0;
}
