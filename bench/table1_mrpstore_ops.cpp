// Table 1 reproduction: the MRP-Store operation set (read, scan, update,
// insert, delete), measured per operation on a live 2-partition deployment.
// The paper's Table 1 defines the interface; this bench demonstrates every
// operation working through atomic multicast and reports its cost.
#include "bench/bench_util.h"
#include "common/strings.h"
#include "kvstore/deployment.h"

int main() {
  using namespace amcast;
  bench::banner("Table 1 — MRP-Store operations",
                "Benz et al., MIDDLEWARE'14, Table 1 (§6.1)",
                "2 hash partitions x 3 replicas, global ring, async disk; "
                "one closed-loop client per operation type");

  struct OpSpec {
    const char* name;
    kvstore::Op op;
  };
  const OpSpec ops[] = {
      {"read(k)", kvstore::Op::kRead},
      {"scan(k,k')", kvstore::Op::kScan},
      {"update(k,v)", kvstore::Op::kUpdate},
      {"insert(k,v)", kvstore::Op::kInsert},
      {"delete(k)", kvstore::Op::kDelete},
  };

  TextTable t({"operation", "ops/s", "mean ms", "p99 ms", "partitions hit"});
  for (const auto& spec_op : ops) {
    kvstore::KvDeploymentSpec spec;
    spec.partitions = 2;
    spec.replicas_per_partition = 3;
    spec.partitioner = kvstore::Partitioner::hash(2);
    spec.global_ring = true;
    spec.storage = ringpaxos::StorageOptions::Mode::kAsyncDisk;
    spec.disk = sim::Presets::hdd();
    spec.lambda = 4000;
    kvstore::KvDeployment d(spec);
    d.preload(20000, 512,
              [](std::uint64_t r) {
                return str_cat("k", std::to_string(100000 + r));
              });

    std::uint64_t next_insert = 1;
    auto gen = [&, op = spec_op.op](int, Rng& rng) {
      kvstore::Command c;
      c.op = op;
      switch (op) {
        case kvstore::Op::kRead:
        case kvstore::Op::kUpdate:
          c.key = str_cat("k", std::to_string(100000 + rng.next_u64(20000)));
          break;
        case kvstore::Op::kScan:
          c.key = str_cat("k", std::to_string(100000 + rng.next_u64(19000)));
          c.end_key = c.key + "~";
          break;
        case kvstore::Op::kInsert:
          c.key = str_cat("new", std::to_string(next_insert++));
          break;
        case kvstore::Op::kDelete:
          // Deleting (possibly absent) keys still exercises the full path.
          c.key = str_cat("k", std::to_string(100000 + rng.next_u64(20000)));
          break;
      }
      if (c.op == kvstore::Op::kUpdate || c.op == kvstore::Op::kInsert) {
        c.value.assign(512, 0);
      }
      return c;
    };
    auto& client = d.add_client(16, gen);

    const Duration warmup = duration::seconds(1);
    const Duration window = duration::seconds(3);
    d.sim().run_until(warmup);
    d.sim().metrics().histogram("kv.latency").clear();
    std::int64_t c0 = client.completed();
    d.sim().run_until(warmup + window);

    const auto& h = d.sim().metrics().histogram("kv.latency");
    t.add_row({spec_op.name,
               TextTable::num(bench::rate(client.completed() - c0, window), 0),
               TextTable::num(h.mean_ms(), 2), TextTable::num(h.p99_ms(), 2),
               spec_op.op == kvstore::Op::kScan ? "all (global ring)" : "1"});
  }
  t.print("Per-operation cost through atomic multicast  [paper: Table 1]");
  return 0;
}
