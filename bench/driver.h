// Shared closed-loop load driver for the benchmark programs and the perf
// suite. Replaces the per-bench Driver/DummyNode copies: one node that keeps
// `threads` multicasts outstanding across one or more groups, records
// per-value delivery latency into a shared histogram, and counts
// completions and bytes.
#pragma once

#include <map>
#include <vector>

#include "core/multicast.h"

namespace amcast::bench {

/// Histogram all drivers record end-to-end delivery latency into. Each
/// bench run owns a fresh Simulation, so one shared name is unambiguous.
inline constexpr const char* kLatencyHist = "bench.latency";

/// A ring member running closed-loop proposer threads (the paper's "dummy
/// service", §8.3.1): every delivery of one of its own values completes the
/// round-trip, records latency, and immediately issues the next multicast
/// to the same group.
class LoadDriver : public core::MulticastNode {
 public:
  LoadDriver(core::ConfigRegistry& reg, int threads, std::size_t value_bytes,
             sim::CpuParams cpu = sim::Presets::server_cpu())
      : core::MulticastNode(reg, cpu),
        threads_(threads),
        value_bytes_(value_bytes) {}

  /// Starts the closed loop against group `g` (subscribe first).
  void start_load(GroupId g) { start_load(std::vector<GroupId>{g}); }

  /// Starts the closed loop spread over `groups` (thread t drives
  /// groups[t % groups.size()]).
  void start_load(std::vector<GroupId> groups) {
    groups_ = std::move(groups);
    for (int t = 0; t < threads_; ++t) {
      issue(groups_[std::size_t(t) % groups_.size()]);
    }
  }

  /// Round-trips completed by this node's own values.
  std::int64_t completed() const { return completed_; }
  /// Every application value delivered to this node (own or not).
  std::int64_t deliveries() const { return deliveries_; }
  /// Payload bytes delivered to this node.
  std::int64_t delivered_bytes() const { return delivered_bytes_; }

 protected:
  void on_deliver(GroupId g, const ringpaxos::ValuePtr& v) override {
    ++deliveries_;
    delivered_bytes_ += std::int64_t(v->payload ? v->payload->size() : 0);
    if (v->origin == id()) {
      auto it = outstanding_.find(v->msg_id);
      if (it != outstanding_.end()) {
        metrics().histogram(kLatencyHist).record_duration(now() - it->second);
        GroupId next = v->group;
        outstanding_.erase(it);
        ++completed_;
        issue(next);
      }
    }
    core::MulticastNode::on_deliver(g, v);
  }

 private:
  void issue(GroupId g) {
    MessageId mid = multicast(g, value_bytes_);
    outstanding_[mid] = now();
  }

  int threads_;
  std::size_t value_bytes_;
  std::vector<GroupId> groups_;
  std::map<MessageId, Time> outstanding_;
  std::int64_t completed_ = 0;
  std::int64_t deliveries_ = 0;
  std::int64_t delivered_bytes_ = 0;
};

}  // namespace amcast::bench
