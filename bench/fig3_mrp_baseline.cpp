// Figure 3 reproduction: Multi-Ring Paxos baseline with a dummy service.
//
// Paper setup (§8.3.1): one ring with three processes, all of which are
// proposers, acceptors, and learners; one acceptor coordinates. Proposers
// run 10 closed-loop threads each; request sizes 512 B - 32 KB; batching
// disabled in the ring; five storage modes. M=1, ∆=5 ms, λ=9000 (§8.2).
//
// Reported, as in the paper: throughput (Mbps), mean latency (ms),
// coordinator CPU%, and the latency CDF for 32 KB values.
#include <memory>

#include "bench/bench_util.h"
#include "bench/driver.h"

namespace amcast {
namespace {

using bench::LoadDriver;
using ringpaxos::ConfigRegistry;
using ringpaxos::RingOptions;
using ringpaxos::StorageOptions;

struct Mode {
  const char* name;
  StorageOptions::Mode mode;
  bool ssd;
  double gc_factor;  ///< models the Java GC overhead of heap-buffered paths
};

struct CellResult {
  double mbps = 0;
  double mean_ms = 0;
  double cpu_pct = 0;
  Histogram latency;
};

CellResult run_cell(const Mode& mode, std::size_t size) {
  sim::Simulation sim(42);
  ConfigRegistry registry;

  // Closed-loop proposer threads against a "dummy service" (commands
  // execute nothing, §8.3.1).
  std::vector<LoadDriver*> nodes;
  std::vector<ProcessId> ids;
  for (int i = 0; i < 3; ++i) {
    auto n = std::make_unique<LoadDriver>(registry, /*threads=*/10, size);
    if (mode.mode != StorageOptions::Mode::kMemory) {
      n->add_disk(mode.ssd ? sim::Presets::ssd() : sim::Presets::hdd());
    }
    n->set_cpu_cost_factor(mode.gc_factor);
    nodes.push_back(n.get());
    ids.push_back(sim.add_node(std::move(n)));
  }
  GroupId g = registry.create_ring(ids, ids, ids[0]);

  RingOptions ro;
  ro.storage.mode = mode.mode;
  ro.lambda = 9000;                         // paper §8.2 (local)
  ro.delta = duration::milliseconds(5);
  ro.packing = false;                       // batching disabled (§8.3.1)
  for (auto* n : nodes) n->subscribe(g, ro);
  for (auto* n : nodes) n->start_load(g);

  const Duration warmup = duration::milliseconds(500);
  const Duration window = duration::milliseconds(1500);
  sim.run_until(warmup);
  sim.metrics().histogram(bench::kLatencyHist).clear();
  std::int64_t bytes0 = nodes[2]->delivered_bytes();
  sim.node(ids[0]).take_cpu_busy_seconds();  // reset coordinator CPU window
  sim.run_until(warmup + window);

  CellResult r;
  std::int64_t bytes = nodes[2]->delivered_bytes() - bytes0;
  r.mbps = double(bytes) * 8.0 / duration::to_seconds(window) / 1e6;
  const auto& h = sim.metrics().histogram(bench::kLatencyHist);
  r.mean_ms = h.mean_ms();
  r.cpu_pct =
      sim.node(ids[0]).take_cpu_busy_seconds() / duration::to_seconds(window) *
      100.0;
  r.latency = h;
  return r;
}

}  // namespace
}  // namespace amcast

int main() {
  using namespace amcast;
  bench::banner(
      "Figure 3 — Multi-Ring Paxos baseline (dummy service)",
      "Benz et al., MIDDLEWARE'14, Figure 3",
      "1 ring x 3 processes (all proposer+acceptor+learner), 10 threads each, "
      "batching off, M=1, delta=5ms, lambda=9000");

  const Mode modes[] = {
      {"Sync Disk", StorageOptions::Mode::kSyncDisk, false, 1.2},
      {"Sync Disk (SSD)", StorageOptions::Mode::kSyncDisk, true, 1.2},
      {"Async Disk", StorageOptions::Mode::kAsyncDisk, false, 1.6},
      {"Async Disk (SSD)", StorageOptions::Mode::kAsyncDisk, true, 1.6},
      {"In Memory", StorageOptions::Mode::kMemory, false, 1.0},
  };
  const std::size_t sizes[] = {512, 2048, 8192, 32768};

  TextTable tput({"storage mode", "512", "2k", "8k", "32k"});
  TextTable lat({"storage mode", "512", "2k", "8k", "32k"});
  TextTable cpu({"storage mode", "512", "2k", "8k", "32k"});
  std::vector<std::pair<std::string, Histogram>> cdfs;

  for (const auto& m : modes) {
    std::vector<std::string> trow{m.name}, lrow{m.name}, crow{m.name};
    for (std::size_t s : sizes) {
      auto r = run_cell(m, s);
      trow.push_back(TextTable::num(r.mbps, 1));
      lrow.push_back(TextTable::num(r.mean_ms, 2));
      crow.push_back(TextTable::num(r.cpu_pct, 0));
      if (s == 32768) cdfs.emplace_back(m.name, std::move(r.latency));
    }
    tput.add_row(trow);
    lat.add_row(lrow);
    cpu.add_row(crow);
  }

  tput.print("Throughput (Mbps) vs value size  [paper: top-left]");
  lat.print("Mean latency (ms) vs value size  [paper: top-right]");
  cpu.print("Coordinator CPU%% vs value size  [paper: bottom-left]");
  for (auto& [name, h] : cdfs) {
    bench::print_cdf(h, "Latency CDF @32 KB — " + name + "  [paper: bottom-right]");
  }
  return 0;
}
