// Open-loop load generation against the real-network runtime (the library
// behind bench/loadgen and tests/loadgen_test).
//
// The paper's evaluation (§8) measures deployed processes on a real
// network; this module reproduces that measurement discipline for our
// amcast_noded clusters:
//
//  * OPEN loop: arrivals follow a Poisson schedule at a configured offered
//    rate, independent of completions. A saturated server does not slow the
//    arrival process down — the backlog it causes is the phenomenon under
//    measurement, not something to hide.
//  * Coordinated omission handled: every request's latency is measured from
//    its INTENDED send time (its slot in the arrival schedule), not from
//    when the client loop got around to issuing it. A stall anywhere —
//    client loop, socket, server — lands in the tail percentiles.
//  * Thousands of concurrent client sessions multiplexed over one process:
//    each session is a (client, thread) identity with its own monotonic
//    sequence, so replica-side write dedup and response routing treat them
//    as independent clients while they share a few net::Transport
//    connections (one per coordinator, like the paper's proposer fan-in).
//
// The result of a measured rate point feeds a BENCH_runtime.json scenario
// row (schema documented in bench/bench_util.h); gate_runtime_report
// implements the CI gate and the fig3/fig7 shape checks over such a
// document.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/sync.h"
#include "common/zipf.h"
#include "core/multicast.h"
#include "kvstore/command.h"
#include "kvstore/partitioner.h"

namespace amcast::bench {

/// Poisson arrival schedule: exponential inter-arrival gaps at a configured
/// rate. The schedule is a pure function of (rate, seed) — the client reads
/// intended times off it and owes every one of them, however late it runs.
class OpenLoopSchedule {
 public:
  explicit OpenLoopSchedule(std::uint64_t seed) : rng_(seed) {}

  /// (Re)starts the schedule at `origin` with a new offered rate.
  void reset(double rate_per_s, Time origin) {
    rate_ = rate_per_s;
    cursor_ = origin;
  }

  /// Intended time of the next arrival (strictly advances the schedule).
  Time next() {
    double gap_ns = rng_.next_exponential(1e9 / rate_);
    cursor_ += Duration(gap_ns) + 1;  // +1 ns: keep arrivals distinct
    return cursor_;
  }

  double rate() const { return rate_; }
  Time cursor() const { return cursor_; }

 private:
  double rate_ = 1;
  Time cursor_ = 0;
  Rng rng_;
};

/// Workload mix: operation ratio, value size, and key distribution.
struct LoadGenOptions {
  int sessions = 1000;             ///< concurrent logical client sessions
  double get_ratio = 0.5;          ///< fraction of reads (rest are inserts)
  std::size_t value_bytes = 128;   ///< payload of each write
  std::uint64_t key_count = 5000;  ///< key universe size
  std::string key_dist = "uniform";  ///< "uniform" | "zipfian"
  Duration op_timeout = duration::seconds(5);  ///< outstanding-entry reaper
  std::uint64_t seed = 1;
};

/// One measured offered-load point.
struct RatePoint {
  double offered_rate = 0;
  double goodput = 0;         ///< completions/s observed during the window
  std::int64_t completed = 0;  ///< completions inside the window
  std::int64_t measured = 0;   ///< latency samples (window-intended arrivals)
  std::int64_t timeouts = 0;   ///< measured arrivals that never completed
  double window_s = 0;
  Histogram latency;           ///< ns, from intended send time
};

/// The load-generating client node: lives on a runtime::Executor (or any
/// env::Host) and multicasts MRP-Store commands to the partition rings,
/// open-loop. Orchestration (warmup/window/drain pacing) is driven from
/// outside via the phase methods — the node itself only reacts to timers
/// and responses, so tests can run it on any backend.
///
/// Threading: mutators (start_preload, set_rate, begin_window) run on the
/// loop thread hosting the node. The measurement OBSERVERS — drained(),
/// take_point(), the counter accessors — are thread-safe (stats_mu_), so a
/// separate orchestrator thread can watch a running sweep; the multicore
/// loadgen (one client per ring thread) hangs off the same seam.
class LoadGenClient final : public core::MulticastNode {
 public:
  LoadGenClient(core::ConfigRegistry& registry,
                kvstore::Partitioner partitioner,
                std::vector<GroupId> partition_groups, LoadGenOptions opts);
  ~LoadGenClient() override;

  // --- preload: pipelined inserts populating the key universe ------------
  void start_preload(int pipeline);
  bool preload_done() const { return preload_remaining_ == 0; }

  // --- open-loop load -----------------------------------------------------
  /// (Re)starts the arrival schedule at `offered_per_s`. Call set_rate(0)
  /// or stop_load() to stop issuing.
  void set_rate(double offered_per_s);
  void stop_load() { set_rate(0); }

  // --- measurement window -------------------------------------------------
  /// Starts a measurement window of length `window` at now(): the latency
  /// histogram restarts, and arrivals intended inside the window become
  /// "measured" (their completions/timeouts make up the point).
  void begin_window(Duration window) AMCAST_EXCLUDES(stats_mu_);
  /// Ends measured-arrival marking (goodput counting is bounded by the
  /// window times themselves, so calling this late is harmless).
  /// Thread-safe.
  void end_window() AMCAST_EXCLUDES(stats_mu_) {
    MutexLock l(&stats_mu_);
    window_active_ = false;
  }
  /// True when every measured arrival has completed or timed out — the
  /// point's tail is fully accounted for. Thread-safe.
  bool drained() const AMCAST_EXCLUDES(stats_mu_) {
    MutexLock l(&stats_mu_);
    return measured_outstanding_ == 0;
  }
  /// The finished point (call after end_window + drain). Thread-safe.
  RatePoint take_point() const AMCAST_EXCLUDES(stats_mu_);

  // --- introspection (thread-safe) ----------------------------------------
  std::int64_t issued() const AMCAST_EXCLUDES(stats_mu_) {
    MutexLock l(&stats_mu_);
    return issued_;
  }
  std::int64_t completed_total() const AMCAST_EXCLUDES(stats_mu_) {
    MutexLock l(&stats_mu_);
    return completed_total_;
  }
  std::int64_t timeouts_total() const AMCAST_EXCLUDES(stats_mu_) {
    MutexLock l(&stats_mu_);
    return timeouts_total_;
  }
  /// Loop-thread only (reads the un-guarded pending table).
  std::int64_t outstanding() const {
    return std::int64_t(outstanding_.size());
  }

  void on_start() override;
  void on_message(ProcessId from, const env::MessagePtr& m) override;

 private:
  struct Pending {
    Time intended = 0;
    MessageId mid = 0;
    std::uint64_t key_index = 0;
    bool measured = false;
    bool preload = false;
  };
  using OpKey = std::pair<std::int32_t, std::uint64_t>;  // (thread, seq)

  void arm_arrival_timer();
  void fire_arrivals();
  void issue(Time intended, kvstore::Command c, std::uint64_t key_index,
             bool preload) AMCAST_EXCLUDES(stats_mu_);
  void issue_next_preload();
  void complete(std::map<OpKey, Pending>::iterator it)
      AMCAST_EXCLUDES(stats_mu_);
  void reap_expired() AMCAST_EXCLUDES(stats_mu_);
  kvstore::Command next_command(std::uint64_t* key_index);
  std::uint64_t next_key();
  std::string key_name(std::uint64_t k) const;

  LoadGenOptions opts_;
  kvstore::Partitioner partitioner_;
  std::vector<GroupId> pgroups_;
  Rng rng_;                ///< workload choices (keys, op mix)
  OpenLoopSchedule schedule_;
  std::unique_ptr<ScrambledZipfianGenerator> zipf_;

  std::vector<std::uint64_t> session_seq_;  ///< per-session next sequence
  std::int64_t next_session_ = 0;           ///< round-robin session cursor
  std::map<OpKey, Pending> outstanding_;

  bool load_active_ = false;
  Time next_arrival_ = 0;         ///< intended time of the next arrival
  std::uint64_t load_epoch_ = 0;  ///< invalidates stale arrival timers
  env::TimerId reaper_ = 0;

  // Measurement window + totals: written on the loop thread as ops issue,
  // complete and expire; read by the orchestrator (possibly another
  // thread) through the observer methods above.
  mutable Mutex stats_mu_;
  bool window_active_ AMCAST_GUARDED_BY(stats_mu_) = false;
  Time window_start_ AMCAST_GUARDED_BY(stats_mu_) = 0;
  Time window_end_ AMCAST_GUARDED_BY(stats_mu_) = 0;
  Histogram latency_ AMCAST_GUARDED_BY(stats_mu_);
  std::int64_t window_completed_ AMCAST_GUARDED_BY(stats_mu_) = 0;
  std::int64_t measured_issued_ AMCAST_GUARDED_BY(stats_mu_) = 0;
  std::int64_t measured_outstanding_ AMCAST_GUARDED_BY(stats_mu_) = 0;
  std::int64_t measured_timeouts_ AMCAST_GUARDED_BY(stats_mu_) = 0;
  std::int64_t issued_ AMCAST_GUARDED_BY(stats_mu_) = 0;
  std::int64_t completed_total_ AMCAST_GUARDED_BY(stats_mu_) = 0;
  std::int64_t timeouts_total_ AMCAST_GUARDED_BY(stats_mu_) = 0;

  // Preload (loop-thread only).
  std::int64_t preload_remaining_ = 0;
  std::uint64_t preload_next_key_ = 0;
  int preload_pipeline_ = 0;
};

/// Builds the BENCH_runtime.json scenario row of one rate point (schema in
/// bench/bench_util.h: params carry the point's identity for gate matching,
/// metrics carry the measurements). `threads` labels the executor threads
/// per server process (the sharded runtime); it is emitted as a param only
/// when != 1 so single-threaded rows keep their historical gate keys.
ScenarioResult make_runtime_row(const std::string& name, int rings,
                                int threads, const LoadGenOptions& opts,
                                const RatePoint& point, std::uint64_t seed,
                                double wall_s);

/// Runtime gate + shape checks over a BENCH_runtime.json document.
struct RuntimeGateOptions {
  /// Fractional two-sided tolerance on goodput vs the baseline (0.5 = ±50%;
  /// wall-clock measurements on shared machines need wide gates).
  double tolerance = 0.5;
  /// fig3: require the sweep to actually reach saturation (the top offered
  /// rate must exceed what the cluster delivers). Full sweeps only — smoke
  /// sweeps on slow CI machines may intentionally stay below the knee.
  bool require_saturation = false;
  /// fig7: require higher aggregate goodput at 2 rings than at 1.
  bool require_scaling = false;
  /// Multicore: for at least one ring count measured at both threads==1 and
  /// threads>1, the multithreaded peak goodput must be >= this factor times
  /// the single-threaded peak (0 disables). The runtime_bench multicore leg
  /// gates at 2x on hosts with enough cores.
  double require_multicore_speedup = 0;
};

/// Verifies `current` (and optionally compares against `baseline`); prints
/// a per-point delta table and shape verdicts. Returns 0 when everything
/// passes, 1 otherwise.
int gate_runtime_report(const json::Value& current, const json::Value* baseline,
                        const RuntimeGateOptions& opts);

}  // namespace amcast::bench
