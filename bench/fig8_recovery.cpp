// Figure 8 reproduction: impact of recovery on performance.
//
// Paper setup (§8.5): one ring with three acceptors (asynchronous disk
// writes) and three replicas. The system runs at ~75% of peak load with one
// client. Replicas checkpoint their in-memory store synchronously to disk,
// which lets the acceptors trim their logs. One replica is terminated at
// t=20 s and restarts at t=240 s, at which point it fetches the most recent
// checkpoint from an operational replica and retrieves the remaining
// instances from the acceptors. Annotated events, as in the paper:
//   1: replica terminated        2: replica checkpoint
//   3: acceptor log trimming     4: replica recovery
//   5: re-proposals due to recovery traffic
#include <map>

#include "bench/bench_util.h"
#include "kvstore/deployment.h"

int main() {
  using namespace amcast;
  bench::banner(
      "Figure 8 — impact of recovery on performance",
      "Benz et al., MIDDLEWARE'14, Figure 8",
      "1 ring: 3 acceptors (async disk) + 3 replicas; ~75% of peak load; "
      "sync checkpoints + quorum trim; crash @20s, restart @240s, 300s run");

  kvstore::KvDeploymentSpec spec;
  spec.partitions = 1;
  spec.replicas_per_partition = 3;
  spec.dedicated_acceptors = 3;
  spec.partitioner = kvstore::Partitioner::hash(1);
  spec.global_ring = false;
  spec.storage = ringpaxos::StorageOptions::Mode::kAsyncDisk;
  spec.disk = sim::Presets::hdd();
  spec.lambda = 9000;
  spec.checkpoint_interval = duration::seconds(60);
  spec.trim_interval = duration::seconds(75);
  spec.proposal_timeout = duration::milliseconds(250);  // enables event 5
  kvstore::KvDeployment d(spec);

  // ~75% of peak: the ring sustains ~8-9k updates/s at this configuration;
  // 10 closed-loop threads with no think time settle around 6k/s.
  d.preload(50000, 1024,
            [](std::uint64_t r) { return "key" + std::to_string(r); });
  d.add_client(10, [](int, Rng& rng) {
    kvstore::Command c;
    c.op = kvstore::Op::kUpdate;
    c.key = "key" + std::to_string(rng.next_u64(50000));
    c.value.assign(1024, 0);
    return c;
  });

  auto& sim = d.sim();
  // Sample the re-proposal counter once per second (event 5 detection).
  std::map<int, std::int64_t> reproposals_per_s;
  for (int s = 1; s <= 300; ++s) {
    sim.at(duration::seconds(s), [&, s] {
      reproposals_per_s[s] =
          sim.metrics().counter_value("ringpaxos.reproposals");
    });
  }

  sim.run_until(duration::seconds(20));
  d.crash_replica(0, 2);
  sim.run_until(duration::seconds(240));
  d.restart_replica(0, 2);
  sim.run_until(duration::seconds(300));

  // --- assemble the timeline ---
  auto& tput = sim.metrics().series("kv.tput");
  auto& lat = sim.metrics().series("kv.latns");
  auto& trims = sim.metrics().series("recovery.trim_events");

  std::map<int, std::string> events;
  events[20] += " [1:replica-terminated]";
  events[240] += " [4:replica-recovery]";
  for (int r = 0; r < 3; ++r) {
    for (const auto& [t, e] : d.replica(0, r).events()) {
      int s = int(t / duration::seconds(1));
      if (e == "checkpoint.durable") events[s] += " [2:checkpoint]";
      if (e == "recovery.done") events[s] += " [4:recovery-done]";
      if (e == "recovery.install_remote") events[s] += " [4:remote-checkpoint]";
    }
  }
  for (std::size_t i = 0; i < trims.bucket_count(); ++i) {
    if (trims.samples(i) > 0) events[int(i)] += " [3:acceptor-trim]";
  }
  std::int64_t prev = 0;
  for (auto& [s, v] : reproposals_per_s) {
    if (v - prev > 0) events[s] += " [5:re-proposals x" +
                                   std::to_string(v - prev) + "]";
    prev = v;
  }

  TextTable t({"time s", "ops/s", "latency ms", "events"});
  for (int s = 0; s < 300; ++s) {
    auto i = std::size_t(s);
    bool interesting = events.count(s) > 0;
    if (s % 10 != 0 && !interesting) continue;  // compact output
    t.add_row({TextTable::integer(s),
               TextTable::num(tput.rate(i), 0),
               TextTable::num(lat.mean(i) * 1e-6, 1),
               events.count(s) ? events[s] : ""});
  }
  t.print("Throughput / latency timeline  [paper: Fig. 8]");

  std::printf("\nRecovering replica event log (last 40):\n");
  {
    const auto& ev = d.replica(0, 2).events();
    std::size_t start = ev.size() > 40 ? ev.size() - 40 : 0;
    for (std::size_t i = start; i < ev.size(); ++i) {
      std::printf("  [%8.3f s] %s\n", duration::to_seconds(ev[i].first),
                  ev[i].second.c_str());
    }
  }
  // Diagnostic: if the recovering replica is still catching up, inspect the
  // acceptor log around its cursor.
  if (d.replica(0, 2).recovering()) {
    InstanceId cur = d.replica(0, 2).next_to_deliver(d.partition_group(0));
    const auto& cfg = d.config().ring(d.partition_group(0));
    for (ProcessId a : cfg.acceptors) {
      auto& node = static_cast<core::MulticastNode&>(sim.node(a));
      const auto* st = node.storage_view(d.partition_group(0));
      if (!st) continue;
      const auto* e = st->find(cur);
      std::printf("acceptor %d: cursor=%lld entry=%s first=%lld count=%d "
                  "decided=%d first_retained=%lld\n",
                  a, (long long)cur, e ? "yes" : "NO",
                  e ? (long long)e->instance : -1, e ? e->count : 0,
                  e ? int(e->decided) : 0, (long long)st->first_retained());
    }
  }

  std::printf("\nRecovery stats: checkpoints=%lld trims=%lld state_transfers=%lld "
              "recoveries=%lld re-proposals=%lld\n",
              (long long)sim.metrics().counter_value("recovery.checkpoints"),
              (long long)sim.metrics().counter_value("recovery.acceptor_trims"),
              (long long)sim.metrics().counter_value("recovery.state_transfers"),
              (long long)sim.metrics().counter_value("recovery.completed"),
              (long long)sim.metrics().counter_value("ringpaxos.reproposals"));
  return 0;
}
