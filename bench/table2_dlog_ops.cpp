// Table 2 reproduction: the dLog operation set (append, multi-append, read,
// trim), measured per operation on a 2-log deployment with a shared ring.
#include "bench/bench_util.h"
#include "dlog/deployment.h"

int main() {
  using namespace amcast;
  bench::banner("Table 2 — dLog operations",
                "Benz et al., MIDDLEWARE'14, Table 2 (§6.2)",
                "2 logs (one ring+disk each) + shared ring, 3 co-located "
                "servers, async disk; one closed-loop client per operation");

  struct OpSpec {
    const char* name;
    dlog::Op op;
  };
  const OpSpec ops[] = {
      {"append(l,v)", dlog::Op::kAppend},
      {"multi-append(L,v)", dlog::Op::kMultiAppend},
      {"read(l,p)", dlog::Op::kRead},
      {"trim(l,p)", dlog::Op::kTrim},
  };

  TextTable t({"operation", "ops/s", "mean ms", "p99 ms", "logs addressed"});
  for (const auto& spec_op : ops) {
    dlog::DLogDeploymentSpec spec;
    spec.logs = 2;
    spec.server_nodes = 3;
    spec.storage = ringpaxos::StorageOptions::Mode::kAsyncDisk;
    spec.disk = sim::Presets::hdd();
    spec.lambda = 4000;
    dlog::DLogDeployment d(spec);

    // Seed both logs so reads/trims have data (runs through consensus).
    auto& seeder = d.add_client(4, [](int t, Rng&) {
      dlog::Command c;
      c.op = dlog::Op::kAppend;
      c.logs = {dlog::LogId(t % 2)};
      c.value.assign(1024, 0);
      return c;
    });
    d.sim().run_until(duration::seconds(1));
    seeder.stop();
    std::int64_t seeded = d.server(0).log_length(0);

    auto gen = [&, op = spec_op.op](int, Rng& rng) {
      dlog::Command c;
      c.op = op;
      switch (op) {
        case dlog::Op::kAppend:
          c.logs = {dlog::LogId(rng.next_u64(2))};
          c.value.assign(1024, 0);
          break;
        case dlog::Op::kMultiAppend:
          c.logs = {0, 1};
          c.value.assign(1024, 0);
          break;
        case dlog::Op::kRead:
          c.logs = {0};
          c.position = std::int64_t(rng.next_u64(std::uint64_t(seeded)));
          break;
        case dlog::Op::kTrim:
          // Monotone trims exercise cache flush + new segment creation.
          c.logs = {0};
          c.position = std::int64_t(rng.next_u64(std::uint64_t(seeded)));
          break;
      }
      return c;
    };
    auto& client = d.add_client(16, gen, 0, "op");

    const Duration warmup = duration::seconds(1);
    const Duration window = duration::seconds(3);
    d.sim().run_until(d.sim().now() + warmup);
    d.sim().metrics().histogram("op.latency").clear();
    std::int64_t c0 = client.completed();
    d.sim().run_until(d.sim().now() + window);

    const auto& h = d.sim().metrics().histogram("op.latency");
    t.add_row({spec_op.name,
               TextTable::num(bench::rate(client.completed() - c0, window), 0),
               TextTable::num(h.mean_ms(), 2), TextTable::num(h.p99_ms(), 2),
               spec_op.op == dlog::Op::kMultiAppend ? "2 (shared ring)" : "1"});
  }
  t.print("Per-operation cost through atomic multicast  [paper: Table 2]");
  return 0;
}
