#!/usr/bin/env python3
"""amcast_lint — repo-specific determinism & discipline lint.

The compiler cannot know that src/sim, src/ringpaxos, src/core, src/kvstore,
src/dlog and src/chaos form a DETERMINISTIC domain: every run of the
simulator must replay bit-identically from a seed (the chaos harness, the
perf gate and every pinned regression seed depend on it), and the protocol
code hosted there must behave identically when later re-hosted on the real
runtime. This lint enforces the rules that keep that true:

  * no wall clocks, ambient entropy, threads, or sleeps in the sim domain —
    time, randomness and scheduling come from the env::Host;
  * no iteration over unordered containers in protocol code without an
    explicit `// lint:ordered <why>` justification (hash order varies
    between libc++/libstdc++ and between runs with hardened hashing, so it
    must never feed message or delivery order);
  * no NDEBUG-stripped `assert(` / raw `abort()` — invariants go through
    AMCAST_ASSERT/AMCAST_ASSERT_MSG, which stay on in release builds and
    print file/line context before dying;
  * no raw std::thread in src/runtime outside src/runtime/sharding.* —
    the sharding module owns thread lifetime (join-on-stop, pinning, the
    TSan CI leg), and stray threads escape all three;
  * no ambient config mutation in protocol code — ring membership changes
    are epoch transitions DECIDED through the ring (a ConfigChange value,
    applied via ConfigView::install()); constructing a ConfigRegistry or
    calling its direct mutators belongs to composition roots
    (src/*/deployment.*, src/runtime, chaos failure-detector oracles);
  * no ad-hoc stdout in src/runtime or src/net — operational state is
    reported through Metrics (scraped at /metrics) and the sanctioned
    obs::logf/log_line sink (which flushes, so daemon lines survive a
    kill -9 in the smoke scripts); a raw printf is a line the
    observability plane cannot see. stderr stays free for fatal setup
    errors, and CLIs whose stdout IS their interface are allowlisted.

Suppressions: append `// NOLINT-amcast(<rule>): <reason>` to the flagged
line (or the line directly above). The reason is mandatory; a bare NOLINT
is itself a finding (`nolint-hygiene`). `pragma-once` is file-level: a
NOLINT for it anywhere in the file suppresses it.

Usage:
  amcast_lint.py --root <repo>                 # lint src/ and bench/
  amcast_lint.py --root <repo> --json OUT      # + machine-readable findings
  amcast_lint.py --root <repo> --summary-md F  # + markdown count table
  amcast_lint.py --self-test <fixture-dir>     # fixture expectations
  amcast_lint.py --list-rules

Exit codes: 0 clean, 1 findings (or self-test failure), 2 usage error.
"""

import argparse
import json
import os
import re
import sys

# --- domains ---------------------------------------------------------------

# Deterministic domain: everything here replays from a seed.
SIM_DIRS = (
    "src/sim", "src/ringpaxos", "src/core", "src/kvstore", "src/dlog",
    "src/chaos", "src/env", "src/baselines", "src/ycsb",
)
# Protocol domain: code whose control flow feeds message/delivery order.
PROTOCOL_DIRS = (
    "src/sim", "src/ringpaxos", "src/core", "src/kvstore", "src/dlog",
    "src/chaos",
)
SCAN_ROOTS = ("src", "bench")
EXTS = (".h", ".cc", ".cpp")


def in_dirs(rel, dirs):
    rel = rel.replace(os.sep, "/")
    return any(rel == d or rel.startswith(d + "/") for d in dirs)


# --- rules -----------------------------------------------------------------

class Rule:
    def __init__(self, rid, doc, applies, pattern=None, message=None,
                 file_level=False):
        self.rid = rid
        self.doc = doc
        self.applies = applies          # fn(relpath) -> bool
        self.pattern = re.compile(pattern) if pattern else None
        self.message = message or doc
        self.file_level = file_level


def sim_code(rel):
    return in_dirs(rel, SIM_DIRS) and rel.endswith(EXTS)


def protocol_code(rel):
    return in_dirs(rel, PROTOCOL_DIRS) and rel.endswith(EXTS)


def lib_code(rel):
    # .cpp files are binary entry points (daemons, CLIs, bench drivers);
    # they may exit()/abort() on operator error. Libraries must not.
    return rel.endswith((".h", ".cc"))


def any_code(rel):
    return rel.endswith(EXTS)


def protocol_nondeployment(rel):
    # Deployment builders (src/*/deployment.*) are composition roots: they
    # own a ConfigRegistry and may wire rings directly. Everything else in
    # the protocol domain must get configuration changes DECIDED through
    # the rings — a ConfigChange value installed via ConfigView::install().
    rel = rel.replace(os.sep, "/")
    return (protocol_code(rel)
            and not os.path.basename(rel).startswith("deployment."))


def runtime_nonsharding(rel):
    # src/runtime minus the blessed sharding module (src/runtime/sharding.*),
    # which is the one place allowed to spawn raw threads.
    rel = rel.replace(os.sep, "/")
    return (in_dirs(rel, ("src/runtime",)) and rel.endswith(EXTS)
            and not rel.startswith("src/runtime/sharding."))


# CLIs whose stdout IS their interface: amcast_kv prints op results / the
# top table, port_probe prints the probed port for shell capture. Daemon
# operational lines go through obs::logf/log_line instead.
STDOUT_CLI_ALLOWLIST = (
    "src/runtime/amcast_kv.cpp",
    "src/runtime/port_probe.cpp",
)


def runtime_net_noncli(rel):
    rel = rel.replace(os.sep, "/")
    return (in_dirs(rel, ("src/runtime", "src/net")) and rel.endswith(EXTS)
            and rel not in STDOUT_CLI_ALLOWLIST)


def header(rel):
    return rel.endswith(".h")


RULES = [
    Rule(
        "wall-clock",
        "sim-domain code must take time from env::Host::now(), never the "
        "wall clock (replay would diverge between runs and machines)",
        sim_code,
        r"(?:system_clock|steady_clock|high_resolution_clock)\s*::\s*now"
        r"|\bgettimeofday\s*\(|\bclock_gettime\s*\("
        r"|(?<![A-Za-z0-9_])time\s*\(",
    ),
    Rule(
        "ambient-entropy",
        "sim-domain randomness must come from env::Host::rng() (seeded, "
        "replayable); ambient entropy sources break determinism",
        sim_code,
        r"std::random_device|(?<![A-Za-z0-9_])s?rand\s*\("
        r"|(?<![A-Za-z0-9_])random\s*\(|/dev/u?random|\bgetentropy\s*\(",
    ),
    Rule(
        "thread-primitives",
        "sim-domain code is single-threaded by construction; concurrency "
        "lives in src/runtime and src/net behind common/sync.h",
        sim_code,
        r"std::\s*(?:jthread|thread|recursive_mutex|timed_mutex"
        r"|shared_mutex|mutex|condition_variable\w*|atomic\w*|future"
        r"|promise|async|barrier|latch|counting_semaphore"
        r"|binary_semaphore)\b"
        r"|#\s*include\s*<(?:thread|mutex|shared_mutex|atomic|future"
        r"|condition_variable|barrier|latch|semaphore|stop_token)>"
        r"|\bamcast::Mutex\b|\bMutexLock\b|\bpthread_\w+\s*\(",
    ),
    Rule(
        "sleep-calls",
        "sim-domain code must wait via env timers (set_timer/defer), not "
        "real sleeps (simulated time does not advance while sleeping)",
        sim_code,
        r"\bsleep_for\b|\bsleep_until\b|\busleep\s*\(|\bnanosleep\s*\("
        r"|(?<![A-Za-z0-9_])sleep\s*\(",
    ),
    Rule(
        "print-determinism",
        "sim-domain code reports through Metrics/invariant transcripts, "
        "not stdout/stderr (prints desync chaos-replay transcripts)",
        sim_code,
        r"std::cout|std::cerr|(?<![A-Za-z0-9_])f?printf\s*\("
        r"|(?<![A-Za-z0-9_])puts\s*\(",
    ),
    Rule(
        "bare-assert",
        "use AMCAST_ASSERT/AMCAST_ASSERT_MSG (always on, prints context); "
        "bare assert() vanishes under NDEBUG and protocol invariants must "
        "hold in release builds",
        any_code,
        r"(?<![A-Za-z0-9_])assert\s*\("
        r"|#\s*include\s*<cassert>|#\s*include\s*<assert\.h>",
    ),
    Rule(
        "raw-abort",
        "library code must fail through AMCAST_ASSERT (context + always "
        "on) instead of raw abort()/exit()/terminate()",
        lambda rel: lib_code(rel) and any_code(rel),
        r"(?<![A-Za-z0-9_:.])abort\s*\(|std::abort\s*\("
        r"|(?<![A-Za-z0-9_:.])exit\s*\(|std::exit\s*\("
        r"|\bstd::terminate\s*\(|(?<![A-Za-z0-9_])_Exit\s*\(",
    ),
    Rule(
        "raw-thread-spawn",
        "src/runtime spawns threads only through the sharding module "
        "(src/runtime/sharding.* owns thread lifetime: join-on-stop, CPU "
        "pinning, TSan coverage); raw std::thread elsewhere escapes that "
        "lifecycle",
        runtime_nonsharding,
        r"\bstd::\s*(?:jthread|thread)\b|\bpthread_create\s*\(",
    ),
    Rule(
        "ambient-config-mutation",
        "protocol code must not construct a ConfigRegistry or mutate ring "
        "membership directly (reconfigure/remove_member/add_member/"
        "create_ring/adopt); epoch changes are decided through the rings "
        "and applied via ConfigView::install() — direct mutation is for "
        "composition roots (deployments, runtime, chaos oracles)",
        protocol_nondeployment,
        r"\bConfigRegistry\s+\w"
        r"|\bmake_unique<\s*(?:\w+::)*ConfigRegistry\b"
        r"|\bnew\s+(?:\w+::)*ConfigRegistry\b"
        r"|(?:\.|->)\s*(?:reconfigure|remove_member|add_member|create_ring"
        r"|adopt)\s*\(",
    ),
    Rule(
        "ad-hoc-stdout",
        "runtime/net code reports through Metrics (/metrics scrape) and "
        "the obs::logf/log_line sink (flushed, byte-stable lines); ad-hoc "
        "stdout prints are invisible to the observability plane and can be "
        "lost unflushed on kill. stderr is fine for fatal setup errors; "
        "CLIs whose stdout is their interface are allowlisted",
        runtime_net_noncli,
        r"std::cout\b"
        r"|(?<![A-Za-z0-9_:])(?:std\s*::\s*)?printf\s*\("
        r"|(?<![A-Za-z0-9_:])(?:std\s*::\s*)?puts\s*\("
        r"|(?<![A-Za-z0-9_])putchar\s*\("
        r"|\bfprintf\s*\(\s*stdout\b|\bfputs\s*\([^;]*,\s*stdout\s*\)",
    ),
    Rule(
        "unordered-iteration",
        "protocol code must not iterate unordered containers without a "
        "`// lint:ordered <why>` justification (hash order is not stable "
        "across libcs/runs and must never feed delivery order)",
        protocol_code,
        # matched structurally in lint_unordered_iteration()
    ),
    Rule(
        "nolint-hygiene",
        "NOLINT-amcast suppressions need a known rule and a reason; "
        "lint:ordered needs a justification",
        any_code,
    ),
    Rule(
        "pragma-once",
        "headers use #pragma once (uniform include-guard style)",
        header,
        file_level=True,
    ),
]
RULE_IDS = {r.rid for r in RULES}
RULES_BY_ID = {r.rid: r for r in RULES}


# --- matching machinery ----------------------------------------------------

NOLINT_RE = re.compile(r"//\s*NOLINT-amcast\(([^)]*)\)\s*(:?)\s*(.*)")
ORDERED_RE = re.compile(r"//\s*lint:ordered\b\s*(.*)")
LINE_COMMENT_RE = re.compile(r"//.*$")
PRAGMA_ONCE_RE = re.compile(r"\s*#\s*pragma\s+once\b")


class Finding:
    def __init__(self, rule, rel, line_no, snippet):
        self.rule = rule
        self.rel = rel
        self.line_no = line_no
        self.snippet = snippet.strip()[:160]

    def to_json(self):
        return {
            "rule": self.rule,
            "file": self.rel,
            "line": self.line_no,
            "message": RULES_BY_ID[self.rule].message,
            "snippet": self.snippet,
        }

    def __str__(self):
        return "%s:%d: [%s] %s\n    %s" % (
            self.rel, self.line_no, self.rule,
            RULES_BY_ID[self.rule].message, self.snippet)


def strip_block_comments(text):
    """Blanks /* ... */ spans (keeps newlines so line numbers survive)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        j = text.find("/*", i)
        if j < 0:
            out.append(text[i:])
            break
        out.append(text[i:j])
        k = text.find("*/", j + 2)
        if k < 0:
            k = n - 2
        out.append("".join(c if c == "\n" else " " for c in text[j:k + 2]))
        i = k + 2
    return "".join(out)


def code_lines(text):
    """Lines with comments blanked; raw lines kept for suppression scan."""
    raw = text.split("\n")
    stripped = strip_block_comments(text).split("\n")
    code = [LINE_COMMENT_RE.sub("", s) for s in stripped]
    return raw, code


def suppressions(raw_lines):
    """line_no -> set(rule) suppressed there, plus hygiene findings."""
    sup = {}
    hygiene = []  # (line_no, snippet)
    for i, line in enumerate(raw_lines, start=1):
        m = NOLINT_RE.search(line)
        if m:
            rid, colon, reason = m.group(1).strip(), m.group(2), m.group(3)
            if rid not in RULE_IDS:
                hygiene.append((i, "unknown rule '%s' in NOLINT-amcast" % rid))
            elif not colon or len(reason.strip()) < 3:
                hygiene.append(
                    (i, "NOLINT-amcast(%s) without a ': <reason>'" % rid))
            else:
                sup.setdefault(i, set()).add(rid)
        m = ORDERED_RE.search(line)
        if m:
            if len(m.group(1).strip()) < 3:
                hygiene.append((i, "lint:ordered without a justification"))
            else:
                sup.setdefault(i, set()).add("unordered-iteration")
    return sup, hygiene


def suppressed(sup, rule, line_no):
    # Same line or the line directly above.
    return rule in sup.get(line_no, ()) or rule in sup.get(line_no - 1, ())


UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<.*>\s*&?\s*(\w+)\s*[;={(,)]")
UNORDERED_ALIAS_RE = re.compile(
    r"using\s+(\w+)\s*=\s*(?:std::)?unordered_(?:map|set|multimap|multiset)\b")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*?:\s*([\w.\->:]+)\s*\)")
BEGIN_RE = re.compile(r"([\w.\->:]+)\s*\.\s*(?:begin|cbegin)\s*\(")


def last_component(expr):
    return re.split(r"\.|->|::", expr)[-1]


def lint_unordered_iteration(rel, raw, code, sup, findings):
    aliases = set()
    names = set()
    for line in code:
        for m in UNORDERED_ALIAS_RE.finditer(line):
            aliases.add(m.group(1))
        for m in UNORDERED_DECL_RE.finditer(line):
            names.add(m.group(1))
    for alias in aliases:
        decl = re.compile(r"\b%s\s*&?\s*(\w+)\s*[;={(]" % re.escape(alias))
        for line in code:
            for m in decl.finditer(line):
                names.add(m.group(1))
    if not names:
        return
    for i, line in enumerate(code, start=1):
        hits = [m.group(1) for m in RANGE_FOR_RE.finditer(line)]
        hits += [m.group(1) for m in BEGIN_RE.finditer(line)]
        for expr in hits:
            if last_component(expr) in names:
                if not suppressed(sup, "unordered-iteration", i):
                    findings.append(
                        Finding("unordered-iteration", rel, i, raw[i - 1]))
                break


def lint_file(rel, text):
    findings = []
    raw, code = code_lines(text)
    sup, hygiene = suppressions(raw)
    for line_no, msg in hygiene:
        findings.append(Finding("nolint-hygiene", rel, line_no, msg))
    for rule in RULES:
        if rule.pattern is None or not rule.applies(rel):
            continue
        for i, line in enumerate(code, start=1):
            m = rule.pattern.search(line)
            if m and not suppressed(sup, rule.rid, i):
                findings.append(Finding(rule.rid, rel, i, raw[i - 1]))
    if RULES_BY_ID["unordered-iteration"].applies(rel):
        lint_unordered_iteration(rel, raw, code, sup, findings)
    if header(rel) and not any(PRAGMA_ONCE_RE.match(l) for l in code):
        if not any("pragma-once" in s for s in sup.values()):
            findings.append(
                Finding("pragma-once", rel, 1, "missing #pragma once"))
    return findings


def scan_tree(root):
    findings = []
    scanned = 0
    for scan_root in SCAN_ROOTS:
        top = os.path.join(root, scan_root)
        for dirpath, _dirnames, filenames in os.walk(top):
            for fn in sorted(filenames):
                if not fn.endswith(EXTS):
                    continue
                path = os.path.join(dirpath, fn)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                with open(path, encoding="utf-8", errors="replace") as f:
                    findings.extend(lint_file(rel, f.read()))
                scanned += 1
    return findings, scanned


# --- outputs ---------------------------------------------------------------

def counts_of(findings):
    counts = {r.rid: 0 for r in RULES}
    for f in findings:
        counts[f.rule] += 1
    return counts


def write_json(path, findings, scanned):
    doc = {
        "version": 1,
        "tool": "amcast_lint",
        "files_scanned": scanned,
        "counts": counts_of(findings),
        "findings": [f.to_json() for f in findings],
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


def write_summary_md(path, findings, scanned):
    counts = counts_of(findings)
    with open(path, "w", encoding="utf-8") as f:
        f.write("| rule | findings |\n|---|---|\n")
        for r in RULES:
            n = counts[r.rid]
            f.write("| `%s` | %s |\n" % (r.rid, n if n else "0"))
        f.write("\n%d file(s) scanned, %d finding(s).\n"
                % (scanned, len(findings)))


# --- self-test over fixtures ----------------------------------------------

def self_test(fixture_dir):
    """manifest.json: [{file, as_path, rule, expect: fire|clean}, ...]."""
    manifest_path = os.path.join(fixture_dir, "manifest.json")
    with open(manifest_path, encoding="utf-8") as f:
        manifest = json.load(f)
    failures = 0
    covered = set()
    for entry in manifest:
        path = os.path.join(fixture_dir, entry["file"])
        with open(path, encoding="utf-8") as f:
            text = f.read()
        findings = lint_file(entry["as_path"], text)
        fired = {x.rule for x in findings}
        rule, expect = entry["rule"], entry["expect"]
        if expect == "fire":
            ok = rule in fired
            covered.add(rule)
        else:
            ok = rule not in fired
        print("%s %-28s %-22s expect=%s fired=%s"
              % ("PASS" if ok else "FAIL", entry["file"], rule, expect,
                 sorted(fired) or "[]"))
        if not ok:
            failures += 1
    missing = RULE_IDS - covered
    if missing:
        print("FAIL rules with no firing fixture: %s" % sorted(missing))
        failures += 1
    print("self-test: %s (%d entr%s, %d failure%s)"
          % ("PASS" if failures == 0 else "FAIL", len(manifest),
             "y" if len(manifest) == 1 else "ies", failures,
             "" if failures == 1 else "s"))
    return 0 if failures == 0 else 1


# --- main ------------------------------------------------------------------

def main(argv):
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=".", help="repo root (contains src/)")
    ap.add_argument("--json", metavar="PATH",
                    help="write machine-readable findings")
    ap.add_argument("--summary-md", metavar="PATH",
                    help="write a markdown findings table (for CI summary)")
    ap.add_argument("--self-test", metavar="DIR",
                    help="run fixture expectations from DIR/manifest.json")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print("%-22s %s" % (r.rid, r.doc))
        return 0
    if args.self_test:
        return self_test(args.self_test)

    if not os.path.isdir(os.path.join(args.root, "src")):
        print("amcast_lint: --root %r has no src/" % args.root,
              file=sys.stderr)
        return 2
    findings, scanned = scan_tree(args.root)
    for f in findings:
        print(f)
    if args.json:
        write_json(args.json, findings, scanned)
    if args.summary_md:
        write_summary_md(args.summary_md, findings, scanned)
    print("amcast_lint: %d file(s), %d finding(s) -> %s"
          % (scanned, len(findings), "FAIL" if findings else "PASS"))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
