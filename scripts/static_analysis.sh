#!/usr/bin/env bash
# Static-analysis driver: the one entry point for every analysis gate.
#
#   1. amcast_lint        — domain determinism/discipline lint (always runs)
#   2. lint self-test     — every rule fires on its fixture, suppressions work
#   3. thread-safety      — clang -Wthread-safety build of the annotated
#                           libraries (runs when clang++ is on PATH)
#   4. clang-tidy         — curated .clang-tidy set over src/ and bench/
#                           (runs when clang-tidy is on PATH)
#
# Steps whose tool is missing are SKIPPED with a notice and do not fail the
# run (the container bakes in GCC only; CI installs clang/clang-tidy). Any
# step that RUNS and finds problems fails the script.
#
# Usage: scripts/static_analysis.sh [--out-dir DIR]
#   --out-dir DIR   where to leave machine-readable outputs
#                   (lint.json, lint-summary.md, tidy.log, status.md)
set -u -o pipefail

cd "$(dirname "$0")/.."
OUT_DIR="build-sa"
while [ $# -gt 0 ]; do
  case "$1" in
    --out-dir) OUT_DIR="$2"; shift 2 ;;
    *) echo "usage: $0 [--out-dir DIR]" >&2; exit 2 ;;
  esac
done
mkdir -p "$OUT_DIR"
STATUS_MD="$OUT_DIR/status.md"
: > "$STATUS_MD"
FAILURES=0

note() { echo "== $*"; }
record() {  # record <step> <result>
  echo "| $1 | $2 |" >> "$STATUS_MD"
}
echo "| step | result |" >> "$STATUS_MD"
echo "|---|---|" >> "$STATUS_MD"

# --- 1. domain lint --------------------------------------------------------
note "amcast_lint"
if python3 scripts/amcast_lint.py --root . \
    --json "$OUT_DIR/lint.json" --summary-md "$OUT_DIR/lint-summary.md"; then
  record amcast_lint PASS
else
  record amcast_lint FAIL
  FAILURES=$((FAILURES + 1))
fi

# --- 2. lint self-test -----------------------------------------------------
note "amcast_lint --self-test"
if python3 scripts/amcast_lint.py --self-test tests/lint_fixtures \
    > "$OUT_DIR/lint-selftest.log" 2>&1; then
  record lint-self-test PASS
else
  record lint-self-test FAIL
  tail -20 "$OUT_DIR/lint-selftest.log"
  FAILURES=$((FAILURES + 1))
fi

# --- 3. clang -Wthread-safety build ---------------------------------------
note "clang -Wthread-safety"
if command -v clang++ >/dev/null 2>&1; then
  TS_DIR="$OUT_DIR/build-threadsafety"
  if cmake -S . -B "$TS_DIR" -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
        -DCMAKE_CXX_FLAGS="-Wthread-safety -Werror=thread-safety" \
        > "$OUT_DIR/threadsafety.log" 2>&1 \
     && cmake --build "$TS_DIR" -j "$(nproc)" \
        >> "$OUT_DIR/threadsafety.log" 2>&1; then
    record thread-safety PASS
  else
    record thread-safety FAIL
    tail -40 "$OUT_DIR/threadsafety.log"
    FAILURES=$((FAILURES + 1))
  fi
else
  note "clang++ not found — SKIPPING thread-safety build (CI runs it)"
  record thread-safety "SKIP (no clang++)"
fi

# --- 4. clang-tidy ---------------------------------------------------------
note "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  # compile_commands.json comes from any configured build dir (the root
  # CMakeLists exports it unconditionally); prefer the clang one.
  CDB=""
  for d in "$OUT_DIR/build-threadsafety" build build-tidy; do
    [ -f "$d/compile_commands.json" ] && { CDB="$d"; break; }
  done
  if [ -z "$CDB" ]; then
    CDB="build-tidy"
    cmake -S . -B "$CDB" -DCMAKE_BUILD_TYPE=Release \
      > "$OUT_DIR/tidy-configure.log" 2>&1 || true
  fi
  if [ ! -f "$CDB/compile_commands.json" ]; then
    note "could not produce compile_commands.json — SKIPPING clang-tidy"
    record clang-tidy "SKIP (no compile db)"
  else
    # Our own translation units only; gtest/_deps TUs are not our baseline.
    mapfile -t TUS < <(git ls-files 'src/**/*.cc' 'src/**/*.cpp' \
                                    'bench/*.cc' 'bench/*.cpp')
    if clang-tidy -p "$CDB" --quiet "${TUS[@]}" \
        > "$OUT_DIR/tidy.log" 2> "$OUT_DIR/tidy-stderr.log"; then
      record clang-tidy PASS
    else
      record clang-tidy FAIL
      grep -E "warning:|error:" "$OUT_DIR/tidy.log" | head -40
      FAILURES=$((FAILURES + 1))
    fi
  fi
else
  note "clang-tidy not found — SKIPPING (CI runs it)"
  record clang-tidy "SKIP (no clang-tidy)"
fi

# --- summary ---------------------------------------------------------------
echo
cat "$STATUS_MD"
if [ "$FAILURES" -ne 0 ]; then
  echo "static_analysis: FAIL ($FAILURES step(s))"
  exit 1
fi
echo "static_analysis: PASS"
