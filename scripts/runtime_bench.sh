#!/usr/bin/env bash
# Runtime-domain perf sweep: boots real amcast_noded clusters on localhost
# (1/2/4 partition rings, three replicas each), drives each with the
# open-loop load generator across an offered-rate sweep, and accumulates
# every measured point into one BENCH_runtime.json. The artifact reproduces
# the paper's fig3 shape (goodput tracks offered load, then saturates) per
# ring count and the fig7 shape (aggregate goodput grows with rings) in the
# REAL-network domain; `loadgen --gate` then checks both shapes plus a wide
# (+/-50%) goodput comparison against bench/baseline_runtime.json.
#
#   scripts/runtime_bench.sh [--smoke] [--build DIR] [--out FILE]
#                            [--baseline FILE] [--no-gate]
#   scripts/runtime_bench.sh --gate FILE [--baseline FILE]
#
# --smoke: short windows and 1+2 rings only (the CI runtime-perf job); the
# full run adds 4 rings and requires the sweep to reach saturation.
# Rates/windows are overridable via RATES_1/RATES_2/RATES_4, WARMUP_S,
# WINDOW_S, SESSIONS, KEYS for experimentation.
#
# On hosts with >= 4 cores a MULTICORE leg follows: one process hosts every
# replica of a 4-ring cluster (the colocated deployment), swept once with
# --threads 1 and once with --threads 4, rate leveling OFF so the CPU is
# the bottleneck. The gate then requires the thread-per-ring runtime to
# deliver >= 2x the single-thread peak. Overrides: MC=1/0 forces the leg on
# or off, MC_RINGS/MC_THREADS/MC_RATES shape it, and MC_GATE=1 makes a
# standalone `--gate FILE` run enforce the speedup check too.
set -euo pipefail

BUILD=build
OUT=BENCH_runtime.json
BASELINE=bench/baseline_runtime.json
SMOKE=0
GATE_ONLY=""
DO_GATE=1
while [ $# -gt 0 ]; do
  case "$1" in
    --smoke) SMOKE=1 ;;
    --build) BUILD=$2; shift ;;
    --out) OUT=$2; shift ;;
    --baseline) BASELINE=$2; shift ;;
    --no-gate) DO_GATE=0 ;;
    --gate) GATE_ONLY=$2; shift ;;
    *) echo "runtime_bench: unknown arg $1" >&2; exit 64 ;;
  esac
  shift
done

NODED=$BUILD/src/runtime/amcast_noded
LOADGEN=$BUILD/bench/loadgen
PORTPROBE=$BUILD/src/runtime/amcast_portprobe

say() { echo "[bench] $*"; }

gate() {
  local artifact=$1
  local flags=(--gate "$artifact" --tolerance 50 --require-scaling)
  # Set when the multicore leg ran (or exported for standalone gate runs).
  [ "${MC_GATE:-0}" = 1 ] && flags+=(--require-multicore-speedup 2)
  if [ $SMOKE = 1 ]; then
    # The committed baseline is a smoke-shaped artifact (same rates/params),
    # so only the smoke sweep compares against it; the full sweep's rows
    # would match nothing and the gate refuses to "compare" zero points.
    [ -f "$BASELINE" ] && flags+=(--compare "$BASELINE")
  else
    flags+=(--require-saturation)
  fi
  "$LOADGEN" "${flags[@]}"
}

if [ -n "$GATE_ONLY" ]; then
  gate "$GATE_ONLY"
  exit $?
fi

if [ $SMOKE = 1 ]; then
  RING_COUNTS=(1 2)
  : "${WARMUP_S:=1}" "${WINDOW_S:=2}" "${SESSIONS:=500}" "${KEYS:=2000}"
else
  RING_COUNTS=(1 2 4)
  : "${WARMUP_S:=1}" "${WINDOW_S:=3}" "${SESSIONS:=1000}" "${KEYS:=5000}"
fi
# Per-ring ceiling: the sweep runs with rate leveling ENFORCED (lambda_cap)
# at LAMBDA instances/s per ring and batch_values ops per instance, so each
# ring delivers at most LAMBDA*BATCH_VALUES ops/s no matter the host. That
# is the regime the paper measures: a ring's production rate is pinned at
# its leveled rate and capacity grows by adding rings (fig7), which keeps
# the scaling shape reproducible on small CI runners where raw CPU would
# otherwise be the (shared, non-scaling) bottleneck. Saturation against a
# protocol ceiling still exercises the full real-network pipeline — the
# knee, queue growth, and tail-latency blowup of fig3 all appear.
: "${STORAGE:=memory}" "${LAMBDA:=400}" "${BATCH_VALUES:=8}"
# Offered-rate sweeps (per ring count): the top rate must exceed the ring
# ceiling (LAMBDA*BATCH_VALUES per ring = 3200/s at the defaults) so the
# saturation knee is visible; more rings get a higher ceiling (fig7).
: "${RATES_1:=500,1500,2500,4500}"
: "${RATES_2:=500,1500,4000,9000}"
: "${RATES_4:=500,1500,4000,9000,18000}"

WORK=$(mktemp -d "${TMPDIR:-/tmp}/amcast-bench.XXXXXX")
say "work dir: $WORK"
[ -n "${GITHUB_ENV:-}" ] && echo "BENCH_WORK_DIR=$WORK" >> "$GITHUB_ENV"

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  for _ in $(seq 1 20); do
    local alive=0
    for pid in "${PIDS[@]:-}"; do kill -0 "$pid" 2>/dev/null && alive=1; done
    [ $alive = 0 ] && break
    sleep 0.1
  done
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  PIDS=()
}
trap cleanup EXIT

fail() {
  say "FAIL: $*"
  for log in "$WORK"/*.log; do
    echo "--- tail of $(basename "$log") ---"
    tail -n 30 "$log" 2>/dev/null || true
  done
  exit 1
}

wait_for() {  # wait_for FILE REGEX TIMEOUT_S DESCRIPTION
  local file=$1 regex=$2 timeout=$3 what=$4
  for _ in $(seq 1 $((timeout * 10))); do
    grep -qE "$regex" "$file" 2>/dev/null && return 0
    sleep 0.1
  done
  fail "timed out waiting for $what"
}

# Emits a cluster config for R partition rings x 3 replicas (storage mode
# from $STORAGE) plus one client process, on freshly probed ports. No global
# ring: the
# workload is single-key put/get, so partitions stay independent and the
# sweep measures pure horizontal scaling (fig7's deployment shape).
gen_config() {  # gen_config R OUTFILE
  local r=$1 out=$2 n=$((3 * $1))
  mapfile -t ports < <("$PORTPROBE" $((n + 1)))
  [ "${#ports[@]}" = $((n + 1)) ] || fail "port probe"
  {
    echo '{'
    echo "  \"cluster\": \"bench-${r}ring\","
    echo '  "service": "kv",'
    echo '  "processes": ['
    local i
    for i in $(seq 0 $((n - 1))); do
      echo "    {\"id\": $i, \"name\": \"r$i\", \"host\": \"127.0.0.1\"," \
           "\"port\": ${ports[$i]}, \"role\": \"replica\"," \
           "\"partition\": $((i / 3))},"
    done
    echo "    {\"id\": $n, \"name\": \"client\", \"host\": \"127.0.0.1\"," \
         "\"port\": ${ports[$n]}, \"role\": \"client\"}"
    echo '  ],'
    echo '  "rings": ['
    local p
    for p in $(seq 0 $((r - 1))); do
      local a=$((3 * p)) b=$((3 * p + 1)) c=$((3 * p + 2))
      local comma=','
      [ "$p" = $((r - 1)) ] && comma=''
      echo "    {\"kind\": \"partition\", \"partition\": $p," \
           "\"members\": [$a, $b, $c], \"acceptors\": [$a, $b, $c]," \
           "\"coordinator\": $a}$comma"
    done
    echo '  ],'
    echo '  "options": {'
    echo "    \"storage\": \"$STORAGE\","
    echo '    "m": 1,'
    echo '    "delta_ms": 5,'
    echo "    \"lambda\": $LAMBDA,"
    echo '    "lambda_cap": true,'
    echo '    "instance_timeout_ms": 2000,'
    echo '    "proposal_timeout_ms": 4000,'
    echo '    "gap_repair_timeout_ms": 1000,'
    echo '    "gap_repair_probe": true,'
    echo "    \"batch_values\": $BATCH_VALUES,"
    echo '    "batch_bytes": 262144,'
    echo '    "batch_delay_ms": 0,'
    echo '    "client_op_timeout_ms": 15000'
    echo '  }'
    echo '}'
  } > "$out"
}

# Emits a cluster config where ONE process address hosts every replica of R
# partition rings (the colocated deployment the sharded runtime targets)
# plus one client. Rate leveling is OFF: this leg measures CPU scaling
# across executor threads, so the protocol ceiling must not pin every
# thread count to the same rate.
gen_colocated_config() {  # gen_colocated_config R OUTFILE
  local r=$1 out=$2 n=$((3 * $1))
  mapfile -t ports < <("$PORTPROBE" 2)
  [ "${#ports[@]}" = 2 ] || fail "port probe"
  {
    echo '{'
    echo "  \"cluster\": \"bench-colocated-${r}ring\","
    echo '  "service": "kv",'
    echo '  "processes": ['
    local i
    for i in $(seq 0 $((n - 1))); do
      echo "    {\"id\": $i, \"name\": \"r$i\", \"host\": \"127.0.0.1\"," \
           "\"port\": ${ports[0]}, \"role\": \"replica\"," \
           "\"partition\": $((i / 3))},"
    done
    echo "    {\"id\": $n, \"name\": \"client\", \"host\": \"127.0.0.1\"," \
         "\"port\": ${ports[1]}, \"role\": \"client\"}"
    echo '  ],'
    echo '  "rings": ['
    local p
    for p in $(seq 0 $((r - 1))); do
      local a=$((3 * p)) b=$((3 * p + 1)) c=$((3 * p + 2))
      local comma=','
      [ "$p" = $((r - 1)) ] && comma=''
      echo "    {\"kind\": \"partition\", \"partition\": $p," \
           "\"members\": [$a, $b, $c], \"acceptors\": [$a, $b, $c]," \
           "\"coordinator\": $a}$comma"
    done
    echo '  ],'
    echo '  "options": {'
    echo "    \"storage\": \"$STORAGE\","
    echo '    "m": 1,'
    echo '    "delta_ms": 5,'
    echo "    \"lambda\": $LAMBDA,"
    echo '    "lambda_cap": false,'
    echo '    "instance_timeout_ms": 2000,'
    echo '    "proposal_timeout_ms": 4000,'
    echo '    "gap_repair_timeout_ms": 1000,'
    echo '    "gap_repair_probe": true,'
    echo "    \"batch_values\": $BATCH_VALUES,"
    echo '    "batch_bytes": 262144,'
    echo '    "batch_delay_ms": 0,'
    echo '    "client_op_timeout_ms": 15000'
    echo '  }'
    echo '}'
  } > "$out"
}

rm -f "$OUT"
for R in "${RING_COUNTS[@]}"; do
  CONFIG=$WORK/cluster-${R}ring.json
  gen_config "$R" "$CONFIG"
  N=$((3 * R))
  say "booting ${R}-ring cluster ($N replicas)"
  for i in $(seq 0 $((N - 1))); do
    $NODED --config "$CONFIG" --process "r$i" --data-dir "$WORK/${R}ring-r$i" \
      --status-interval-ms 500 >> "$WORK/${R}ring-r$i.log" 2>&1 &
    PIDS+=($!)
  done
  for i in $(seq 0 $((N - 1))); do
    wait_for "$WORK/${R}ring-r$i.log" "^READY" 15 "${R}ring r$i READY"
  done
  # READY = listening; STATUS = event loop ticking. Bounded poll, no sleeps.
  for i in $(seq 0 $((N - 1))); do
    wait_for "$WORK/${R}ring-r$i.log" "^STATUS" 15 "${R}ring r$i STATUS"
  done

  rates_var=RATES_$R
  "$LOADGEN" --config "$CONFIG" --rates "${!rates_var}" \
    --sessions "$SESSIONS" --keys "$KEYS" --get-ratio 0.5 --value-bytes 128 \
    --warmup-s "$WARMUP_S" --window-s "$WINDOW_S" \
    --out "$OUT" --append $([ $SMOKE = 1 ] && echo --smoke) \
    2>&1 | tee -a "$WORK/loadgen-${R}ring.log" \
    || fail "loadgen sweep on the ${R}-ring cluster"

  cleanup
done

# --- multicore leg: 1-thread vs thread-per-ring on one colocated node -----
MC_DEFAULT=0
[ "$(nproc)" -ge 4 ] && MC_DEFAULT=1
: "${MC:=$MC_DEFAULT}" "${MC_RINGS:=4}" "${MC_THREADS:=4}"
if [ $SMOKE = 1 ]; then
  : "${MC_RATES:=500,4000}"
else
  : "${MC_RATES:=500,4000,10000,20000}"
fi
if [ "$MC" = 1 ]; then
  MC_GATE=1
  N=$((3 * MC_RINGS))
  NAMES=$(seq -s, -f 'r%g' 0 $((N - 1)))
  for T in 1 "$MC_THREADS"; do
    CONFIG=$WORK/cluster-colocated-t$T.json
    gen_colocated_config "$MC_RINGS" "$CONFIG"
    say "booting colocated $MC_RINGS-ring node ($N replicas, threads=$T)"
    $NODED --config "$CONFIG" --process "$NAMES" --threads "$T" \
      --data-dir "$WORK/mc-t$T" --status-interval-ms 500 \
      >> "$WORK/mc-t$T.log" 2>&1 &
    PIDS+=($!)
    for i in $(seq 0 $((N - 1))); do
      wait_for "$WORK/mc-t$T.log" "^READY node=$i " 20 "colocated r$i READY"
    done
    wait_for "$WORK/mc-t$T.log" "^STATUS" 15 "colocated STATUS"

    "$LOADGEN" --config "$CONFIG" --rates "$MC_RATES" \
      --sessions "$SESSIONS" --keys "$KEYS" --get-ratio 0.5 \
      --value-bytes 128 --warmup-s "$WARMUP_S" --window-s "$WINDOW_S" \
      --name runtime_multicore --label-threads "$T" \
      --out "$OUT" --append $([ $SMOKE = 1 ] && echo --smoke) \
      2>&1 | tee -a "$WORK/loadgen-mc-t$T.log" \
      || fail "loadgen sweep on the colocated cluster (threads=$T)"
    cleanup
  done
else
  say "skipping multicore leg (nproc=$(nproc) < 4; MC=1 forces it)"
fi

say "sweep artifact: $OUT"
if [ $DO_GATE = 1 ]; then
  gate "$OUT" || exit 1
fi
say "PASS"
