#!/usr/bin/env bash
# Real-network runtime smoke: boots examples/cluster.json (the quickstart
# scenario as 3 daemon processes on localhost TCP), drives it with the
# amcast_kv client, SIGKILLs one replica mid-traffic, restarts it over its
# file-backed acceptor journal (§5.2 recovery), and asserts totally-ordered
# delivery: every replica must report the SAME apply-order hash and store
# hash in its shutdown FINAL line, and the restarted replica must have gone
# through recovery.
#
#   scripts/runtime_smoke.sh [build-dir]
#
# Exits 0 on success; on failure prints the tail of every node log (CI also
# uploads the full logs as artifacts).
set -euo pipefail

BUILD=${1:-build}
NODED=$BUILD/src/runtime/amcast_noded
KV_BIN=$BUILD/src/runtime/amcast_kv
PORTPROBE=$BUILD/src/runtime/amcast_portprobe
WORK=$(mktemp -d "${TMPDIR:-/tmp}/amcast-smoke.XXXXXX")
NODES=(r0 r1 r2)

# examples/cluster.json hardcodes ports 7471-7474 (fine for the quickstart,
# a collision machine for CI runners and busy dev boxes): rewrite the config
# onto kernel-assigned free ports.
CONFIG=$WORK/cluster.json
mapfile -t PORTS < <("$PORTPROBE" 4)
[ "${#PORTS[@]}" = 4 ] || { echo "[smoke] port probe failed"; exit 1; }
sed -e "s/7471/${PORTS[0]}/" -e "s/7472/${PORTS[1]}/" \
    -e "s/7473/${PORTS[2]}/" -e "s/7474/${PORTS[3]}/" \
    examples/cluster.json > "$CONFIG"

say() { echo "[smoke] $*"; }

fail() {
  say "FAIL: $*"
  for n in "${NODES[@]}"; do
    echo "--- tail of $n.log ---"
    tail -n 40 "$WORK/$n.log" 2>/dev/null || true
  done
  exit 1
}

cleanup() {
  for n in "${NODES[@]}"; do
    [ -f "$WORK/$n.pid" ] && kill "$(cat "$WORK/$n.pid")" 2>/dev/null || true
  done
  # Bounded poll for exit instead of a blind sleep: escalate to SIGKILL only
  # for daemons still alive after 2s.
  for _ in $(seq 1 20); do
    local alive=0
    for n in "${NODES[@]}"; do
      [ -f "$WORK/$n.pid" ] && kill -0 "$(cat "$WORK/$n.pid")" 2>/dev/null \
        && alive=1
    done
    [ $alive = 0 ] && break
    sleep 0.1
  done
  for n in "${NODES[@]}"; do
    [ -f "$WORK/$n.pid" ] && kill -9 "$(cat "$WORK/$n.pid")" 2>/dev/null || true
  done
}
trap cleanup EXIT

# If CI wants the logs, tell it where they are.
say "work dir: $WORK"
[ -n "${GITHUB_ENV:-}" ] && echo "SMOKE_WORK_DIR=$WORK" >> "$GITHUB_ENV"

start_node() {
  local n=$1
  $NODED --config $CONFIG --process "$n" --data-dir "$WORK/$n" \
    --status-interval-ms 500 >> "$WORK/$n.log" 2>&1 &
  echo $! > "$WORK/$n.pid"
}

wait_for() {  # wait_for FILE REGEX TIMEOUT_S DESCRIPTION
  local file=$1 regex=$2 timeout=$3 what=$4
  for _ in $(seq 1 $((timeout * 10))); do
    grep -qE "$regex" "$file" 2>/dev/null && return 0
    sleep 0.1
  done
  fail "timed out waiting for $what"
}

kv() { "$KV_BIN" --config $CONFIG "$@"; }

# --- boot ---------------------------------------------------------------
for n in "${NODES[@]}"; do start_node "$n"; done
for n in "${NODES[@]}"; do wait_for "$WORK/$n.log" "^READY" 10 "$n READY"; done
# READY means "listening"; a STATUS line means the event loop is actually
# ticking. Poll for it (bounded) rather than sleeping an arbitrary beat.
for n in "${NODES[@]}"; do
  wait_for "$WORK/$n.log" "^STATUS" 10 "$n first STATUS"
done
say "cluster up"

# --- healthy traffic ----------------------------------------------------
kv --quiet fill 20 64 || fail "fill failed"
kv put user1 alice | grep -q "^OK insert user1" || fail "put user1"
kv get user1 | grep -qF 'OK get user1 = "alice"' || fail "get user1 value"
kv scan key000000 user1 | grep -q "hits=21" || fail "scan over 21 keys"
say "healthy traffic OK (fill + put/get/scan via both rings)"

# --- kill one replica, keep serving -------------------------------------
# r2 sits last in both rings' circulation order, so vote majorities (and
# therefore the service) survive its death without reconfiguration.
kill -9 "$(cat "$WORK/r2.pid")"
say "r2 SIGKILLed"
kv --timeout-ms 15000 put during-outage v1 | grep -q "^OK insert" \
  || fail "put during outage"
kv --timeout-ms 15000 get user1 | grep -qF '= "alice"' \
  || fail "get during outage"
say "served writes and reads with r2 dead"

# --- restart r2: recovery off the file-backed acceptor journal ----------
start_node r2
wait_for "$WORK/r2.log" "^RESTART node=2" 10 "r2 restart marker"
wait_for "$WORK/r2.log" "^RECOVERED node=2" 30 "r2 finishing recovery"
say "r2 recovered"

kv put after-restart v2 | grep -q "^OK insert" || fail "put after restart"
kv get during-outage | grep -qF '= "v1"' || fail "read of outage-era write"

# --- quiesce: all replicas report the same applied count, stable long
# enough to rule out stale STATUS lines (status interval is 500 ms) -------
applied_of() { grep -oE "applied=[0-9]+" "$WORK/$1.log" | tail -1; }
stable=0
for _ in $(seq 1 120); do
  a0=$(applied_of r0); a1=$(applied_of r1); a2=$(applied_of r2)
  if [ -n "$a0" ] && [ "$a0" = "$a1" ] && [ "$a1" = "$a2" ] \
     && [ "$a0" = "${prev:-}" ]; then
    stable=$((stable + 1))
    [ $stable -ge 4 ] && break
  else
    stable=0
  fi
  prev=$a0
  sleep 0.25
done
[ $stable -ge 4 ] || fail "replicas did not converge: r0=$a0 r1=$a1 r2=$a2"
say "replicas converged at $a0"

# --- clean shutdown + total-order assertion ------------------------------
for n in "${NODES[@]}"; do kill "$(cat "$WORK/$n.pid")"; done
for n in "${NODES[@]}"; do
  wait_for "$WORK/$n.log" "^FINAL" 10 "$n FINAL line"
done

grep -h "^FINAL" "$WORK"/r*.log | sed 's/^/[smoke] /'
hashes=$(grep -h "^FINAL" "$WORK"/r*.log \
  | grep -oE "order_hash=[0-9a-f]+ store_hash=[0-9a-f]+" | sort -u)
[ "$(echo "$hashes" | wc -l)" = "1" ] \
  || fail "replicas disagree on apply order or content: $hashes"
grep "^FINAL node=2" "$WORK/r2.log" | grep -qE "recoveries=[1-9]" \
  || fail "r2 never ran recovery"

say "PASS: totally-ordered delivery across 3 real processes, kill+restart recovered from the on-disk journal"
