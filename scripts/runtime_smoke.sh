#!/usr/bin/env bash
# Real-network runtime smoke, two legs:
#
# Leg 1 — crash/recovery: boots examples/cluster.json (the quickstart
# scenario as 3 daemon processes on localhost TCP), drives it with the
# amcast_kv client, SIGKILLs one replica mid-traffic, restarts it over its
# file-backed acceptor journal (§5.2 recovery), and asserts totally-ordered
# delivery: every replica must report the SAME apply-order hash and store
# hash in its shutdown FINAL line, and the restarted replica must have gone
# through recovery.
#
# Leg 1 also exercises the observability plane: after the kill/recover
# cycle every replica must serve /metrics and /healthz, all scraped epochs
# must agree, the stage-latency histograms must be populated, and the sum
# of the server-side per-stage p50s must be within 25% (2 ms floor) of the
# client-observed p50 from `amcast_kv bench`. A /tracez sample is saved
# into the work dir so CI uploads it as an artifact.
#
# Leg 2 — online reconfiguration: boots a 3-replica ring, decides a
# ConfigChange through it to admit a 4th replica (which bootstraps live via
# --join + ConfigPush + §5.2 recovery), decides a coordinator swap, then
# SIGKILLs the original coordinator and keeps serving. After restarting it
# over its journal, all FOUR replicas must agree on apply-order/store hash
# and report the decided epoch.
#
#   scripts/runtime_smoke.sh [build-dir]
#
# Exits 0 on success; on failure prints the tail of every node log (CI also
# uploads the full logs as artifacts).
set -euo pipefail

BUILD=${1:-build}
NODED=$BUILD/src/runtime/amcast_noded
KV_BIN=$BUILD/src/runtime/amcast_kv
PORTPROBE=$BUILD/src/runtime/amcast_portprobe
WORK=$(mktemp -d "${TMPDIR:-/tmp}/amcast-smoke.XXXXXX")

# examples/cluster.json hardcodes ports 7471-7474 plus metrics listeners on
# 7481-7483 (fine for the quickstart, a collision machine for CI runners and
# busy dev boxes): rewrite the config onto kernel-assigned free ports.
CONFIG=$WORK/cluster.json
mapfile -t PORTS < <("$PORTPROBE" 7)
[ "${#PORTS[@]}" = 7 ] || { echo "[smoke] port probe failed"; exit 1; }
sed -e "s/7471/${PORTS[0]}/" -e "s/7472/${PORTS[1]}/" \
    -e "s/7473/${PORTS[2]}/" -e "s/7474/${PORTS[3]}/" \
    -e "s/7481/${PORTS[4]}/" -e "s/7482/${PORTS[5]}/" \
    -e "s/7483/${PORTS[6]}/" \
    examples/cluster.json > "$CONFIG"
MPORTS=("${PORTS[4]}" "${PORTS[5]}" "${PORTS[6]}")  # r0/r1/r2 /metrics

say() { echo "[smoke] $*"; }

all_pids() { find "$WORK" -name '*.pid' 2>/dev/null; }

fail() {
  say "FAIL: $*"
  find "$WORK" -name '*.log' | while read -r f; do
    echo "--- tail of $f ---"
    tail -n 40 "$f" 2>/dev/null || true
  done
  exit 1
}

cleanup() {
  for p in $(all_pids); do kill "$(cat "$p")" 2>/dev/null || true; done
  # Bounded poll for exit instead of a blind sleep: escalate to SIGKILL only
  # for daemons still alive after 2s.
  for _ in $(seq 1 20); do
    local alive=0
    for p in $(all_pids); do
      kill -0 "$(cat "$p")" 2>/dev/null && alive=1
    done
    [ $alive = 0 ] && break
    sleep 0.1
  done
  for p in $(all_pids); do kill -9 "$(cat "$p")" 2>/dev/null || true; done
}
trap cleanup EXIT

# If CI wants the logs, tell it where they are.
say "work dir: $WORK"
[ -n "${GITHUB_ENV:-}" ] && echo "SMOKE_WORK_DIR=$WORK" >> "$GITHUB_ENV"

start_node() {  # start_node CONFIG DIR NAME [extra daemon args...]
  local config=$1 dir=$2 n=$3
  shift 3
  $NODED --config "$config" --process "$n" --data-dir "$dir/$n" \
    --status-interval-ms 500 "$@" >> "$dir/$n.log" 2>&1 &
  echo $! > "$dir/$n.pid"
}

wait_for() {  # wait_for FILE REGEX TIMEOUT_S DESCRIPTION
  local file=$1 regex=$2 timeout=$3 what=$4
  for _ in $(seq 1 $((timeout * 10))); do
    grep -qE "$regex" "$file" 2>/dev/null && return 0
    sleep 0.1
  done
  fail "timed out waiting for $what"
}

kv() { "$KV_BIN" --config $CONFIG "$@"; }

scrape() {  # scrape PORT PATH OUTFILE -> 0 iff HTTP 200 with a body
  local url="http://127.0.0.1:$1$2"
  if command -v curl >/dev/null 2>&1; then
    curl -sf --max-time 5 -o "$3" "$url"
  else
    python3 -c '
import sys, urllib.request
body = urllib.request.urlopen(sys.argv[1], timeout=5).read()
open(sys.argv[2], "wb").write(body)' "$url" "$3" 2>/dev/null
  fi
}

metric() {  # metric FILE KEY -> value of the `KEY value` sample (or empty)
  # `|| true`: an absent sample must yield "" under set -e/pipefail, not
  # abort the script (replicas that coordinate no ring trace no full spans).
  grep -F "$2 " "$1" 2>/dev/null | tail -1 | awk '{print $NF}' || true
}

# ==========================================================================
# Leg 1: crash + restart recovery off the file-backed journal, plus the
# observability plane (config metrics_port turns it on; sample every value
# so the short smoke run populates the stage histograms densely).
# ==========================================================================
NODES=(r0 r1 r2)

# --- boot ---------------------------------------------------------------
for n in "${NODES[@]}"; do
  start_node "$CONFIG" "$WORK" "$n" --trace-sample 1
done
for n in "${NODES[@]}"; do wait_for "$WORK/$n.log" "^READY" 10 "$n READY"; done
# READY means "listening"; a STATUS line means the event loop is actually
# ticking. Poll for it (bounded) rather than sleeping an arbitrary beat.
for n in "${NODES[@]}"; do
  wait_for "$WORK/$n.log" "^STATUS" 10 "$n first STATUS"
done
say "cluster up"

# --- healthy traffic ----------------------------------------------------
kv --quiet fill 20 64 || fail "fill failed"
kv put user1 alice | grep -q "^OK insert user1" || fail "put user1"
kv get user1 | grep -qF 'OK get user1 = "alice"' || fail "get user1 value"
kv scan key000000 user1 | grep -q "hits=21" || fail "scan over 21 keys"
say "healthy traffic OK (fill + put/get/scan via both rings)"

# --- kill one replica, keep serving -------------------------------------
# r2 sits last in both rings' circulation order, so vote majorities (and
# therefore the service) survive its death without reconfiguration.
kill -9 "$(cat "$WORK/r2.pid")"
say "r2 SIGKILLed"
kv --timeout-ms 15000 put during-outage v1 | grep -q "^OK insert" \
  || fail "put during outage"
kv --timeout-ms 15000 get user1 | grep -qF '= "alice"' \
  || fail "get during outage"
say "served writes and reads with r2 dead"

# --- restart r2: recovery off the file-backed acceptor journal ----------
start_node "$CONFIG" "$WORK" r2 --trace-sample 1
wait_for "$WORK/r2.log" "^RESTART node=2" 10 "r2 restart marker"
wait_for "$WORK/r2.log" "^RECOVERED node=2" 30 "r2 finishing recovery"
say "r2 recovered"

kv put after-restart v2 | grep -q "^OK insert" || fail "put after restart"
kv get during-outage | grep -qF '= "v1"' || fail "read of outage-era write"

# --- observability plane: every replica must serve /metrics + /healthz
# after the kill/recover cycle, the scraped epochs must agree, and the
# server-side stage breakdown must add up to what the client measured -----
BENCH_LINE=$(kv bench 300 64) || fail "bench for the stage comparison"
say "$BENCH_LINE"
CLIENT_P50=$(echo "$BENCH_LINE" | grep -oE "p50=[0-9.]+" | cut -d= -f2 || true)
[ -n "$CLIENT_P50" ] || fail "bench did not report a client p50"

for i in 0 1 2; do
  scrape "${MPORTS[$i]}" /healthz "$WORK/healthz-r$i.json" \
    || fail "/healthz scrape on r$i"
  grep -q '"status":"ok"' "$WORK/healthz-r$i.json" \
    || fail "r$i /healthz body is not ok"
  scrape "${MPORTS[$i]}" /metrics "$WORK/metrics-r$i.prom" \
    || fail "/metrics scrape on r$i"
done
# CI uploads the work dir's observability files as artifacts.
scrape "${MPORTS[0]}" /tracez "$WORK/tracez-r0.json" || fail "/tracez scrape"
say "all replicas scraped; /tracez sample saved to $WORK/tracez-r0.json"

# Each replica exports its own epoch gauge; the plane must agree.
epochs=$(for i in 0 1 2; do
  metric "$WORK/metrics-r$i.prom" "ringpaxos_epoch{node=\"$i\"}"
done | sort -u)
[ -n "$epochs" ] && [ "$(echo "$epochs" | wc -l)" = 1 ] \
  || fail "scraped epochs disagree or are missing: $(echo $epochs)"

# Every replica applies, so stage_apply must be populated everywhere. The
# full submit->apply span is only traced where values are both proposed
# and learned, so the stage-vs-client comparison uses the replica with the
# most complete spans.
best=""
best_count=0
for i in 0 1 2; do
  c=$(metric "$WORK/metrics-r$i.prom" "obs_stage_apply_ms_count")
  awk -v c="${c:-0}" 'BEGIN { exit !(c > 0) }' \
    || fail "r$i scraped with an empty stage_apply histogram"
  t=$(metric "$WORK/metrics-r$i.prom" "obs_stage_total_ms_count")
  if awk -v t="${t:-0}" -v b="$best_count" 'BEGIN { exit !(t > b) }'; then
    best_count=${t:-0}
    best="$WORK/metrics-r$i.prom"
  fi
done
[ -n "$best" ] || fail "no replica traced a complete submit->apply span"

stage_p50() { metric "$best" "obs_stage_${1}_ms{quantile=\"0.5\"}"; }
awk -v q="$(stage_p50 queue)" -v r="$(stage_p50 ring)" \
    -v m="$(stage_p50 merge)" -v a="$(stage_p50 apply)" \
    -v cli="$CLIENT_P50" '
  BEGIN {
    sum = q + r + m + a
    tol = cli * 0.25; if (tol < 2.0) tol = 2.0
    d = sum - cli; if (d < 0) d = -d
    printf "[smoke] server stage p50s: queue=%.2f ring=%.2f merge=%.2f " \
           "apply=%.2f sum=%.2fms vs client p50=%.2fms (tol %.2fms)\n",
           q, r, m, a, sum, cli, tol
    exit !(d <= tol)
  }' || fail "server stage p50 sum disagrees with the client-observed p50"
say "observability plane agrees with the cluster (health, epoch, stage sums)"

# --- quiesce: all replicas report the same applied count, stable long
# enough to rule out stale STATUS lines (status interval is 500 ms) -------
applied_of() { grep -oE "applied=[0-9]+" "$1" | tail -1; }
quiesce() {  # quiesce DIR NODE...
  local dir=$1 stable=0 prev="" a first ok
  shift
  for _ in $(seq 1 120); do
    ok=1
    first=$(applied_of "$dir/$1.log")
    for n in "$@"; do
      a=$(applied_of "$dir/$n.log")
      [ -n "$a" ] && [ "$a" = "$first" ] || ok=0
    done
    if [ $ok = 1 ] && [ "$first" = "$prev" ]; then
      stable=$((stable + 1))
      [ $stable -ge 4 ] && { say "replicas converged at $first"; return 0; }
    else
      stable=0
    fi
    prev=$first
    sleep 0.25
  done
  fail "replicas did not converge in $dir"
}
quiesce "$WORK" "${NODES[@]}"

# --- clean shutdown + total-order assertion ------------------------------
for n in "${NODES[@]}"; do kill "$(cat "$WORK/$n.pid")"; done
for n in "${NODES[@]}"; do
  wait_for "$WORK/$n.log" "^FINAL" 10 "$n FINAL line"
done

grep -h "^FINAL" "$WORK"/r*.log | sed 's/^/[smoke] /'
hashes=$(grep -h "^FINAL" "$WORK"/r*.log \
  | grep -oE "order_hash=[0-9a-f]+ store_hash=[0-9a-f]+" | sort -u)
[ "$(echo "$hashes" | wc -l)" = "1" ] \
  || fail "replicas disagree on apply order or content: $hashes"
grep "^FINAL node=2" "$WORK/r2.log" | grep -qE "recoveries=[1-9]" \
  || fail "r2 never ran recovery"

say "leg 1 PASS: totally-ordered delivery across 3 real processes, kill+restart recovered from the on-disk journal"

# ==========================================================================
# Leg 2: online reconfiguration — add a 4th replica to a live ring, decide
# a coordinator swap, kill the original coordinator, keep serving.
# ==========================================================================
say "=== reconfigure leg ==="
WORK2=$WORK/reconf
mkdir -p "$WORK2"
mapfile -t P2 < <("$PORTPROBE" 5)
[ "${#P2[@]}" = 5 ] || fail "port probe (reconfigure leg) failed"

# The epoch-1 config lists r3 under "processes" (so daemons know its
# address and `--process r3` resolves) but NOT in the ring: membership is
# decided at runtime. The "refreshed" config is what an operator would
# hand clients after the decided add + swap — same cluster, ring view of
# epoch 3 — needed once the deposed coordinator (which a stale client's
# proposals would be redirected by) is dead.
make_config() {  # make_config FILE MEMBERS ACCEPTORS COORDINATOR
  cat > "$1" <<EOF
{
  "cluster": "reconf-smoke",
  "service": "kv",
  "processes": [
    {"id": 0, "name": "r0", "host": "127.0.0.1", "port": ${P2[0]}, "role": "replica", "partition": 0},
    {"id": 1, "name": "r1", "host": "127.0.0.1", "port": ${P2[1]}, "role": "replica", "partition": 0},
    {"id": 2, "name": "r2", "host": "127.0.0.1", "port": ${P2[2]}, "role": "replica", "partition": 0},
    {"id": 3, "name": "r3", "host": "127.0.0.1", "port": ${P2[3]}, "role": "replica", "partition": 0},
    {"id": 4, "name": "client", "host": "127.0.0.1", "port": ${P2[4]}, "role": "client"}
  ],
  "rings": [
    {"kind": "partition", "partition": 0, "members": [$2], "acceptors": [$3], "coordinator": $4}
  ],
  "options": {
    "storage": "sync_disk",
    "m": 1,
    "delta_ms": 5,
    "lambda": 1000,
    "instance_timeout_ms": 500,
    "proposal_timeout_ms": 500,
    "gap_repair_timeout_ms": 300,
    "gap_repair_probe": true,
    "batch_values": 8,
    "batch_bytes": 262144,
    "batch_delay_ms": 0,
    "checkpoint_interval_ms": 0,
    "trim_interval_ms": 0,
    "client_op_timeout_ms": 15000
  }
}
EOF
}
CONFIG4=$WORK2/cluster4.json
CONFIG4NEW=$WORK2/cluster4-epoch3.json
make_config "$CONFIG4"    "0, 1, 2"    "0, 1, 2"    0
make_config "$CONFIG4NEW" "0, 1, 2, 3" "0, 1, 2, 3" 1

kv2()    { "$KV_BIN" --config "$CONFIG4" "$@"; }
kv2new() { "$KV_BIN" --config "$CONFIG4NEW" "$@"; }

# --- boot the original three --------------------------------------------
for n in r0 r1 r2; do start_node "$CONFIG4" "$WORK2" "$n"; done
for n in r0 r1 r2; do
  wait_for "$WORK2/$n.log" "^READY" 10 "$n READY (reconf)"
  wait_for "$WORK2/$n.log" "^STATUS" 10 "$n first STATUS (reconf)"
done
kv2 --quiet fill 10 64 || fail "reconf fill failed"
kv2 put alpha a1 | grep -q "^OK insert" || fail "reconf put alpha"
say "3-replica ring up, epoch 1 traffic OK"

# --- decide the add through the ring (epoch 1 -> 2) ----------------------
kv2 reconfigure add r3 --group 0 --from-epoch 1 \
  | grep -q "^RECONFIGURE" || fail "reconfigure add did not propose"
for n in r0 r1 r2; do
  wait_for "$WORK2/$n.log" "^EPOCH node=[0-9]+ group=0 epoch=2 op=0 subject=3" \
    10 "$n installing epoch 2 (add r3)"
done
say "epoch 2 (add r3) decided and installed on all members"

# --- boot the joiner: fresh data dir, view arrives via ConfigPush --------
start_node "$CONFIG4" "$WORK2" r3 --join
wait_for "$WORK2/r3.log" "^JOINED node=3 group=0 epoch=2" 15 "r3 JOINED"
wait_for "$WORK2/r3.log" "^STATUS node=3 .*recovering=0 .*epoch=2" 30 \
  "r3 finishing bootstrap recovery"
kv2 put beta b1 | grep -q "^OK insert" || fail "put with 4 members"
say "r3 joined live and bootstrapped through §5.2 recovery"

# --- decided coordinator swap (epoch 2 -> 3) -----------------------------
kv2 reconfigure coordinator r1 --group 0 --from-epoch 2 \
  | grep -q "^RECONFIGURE" || fail "reconfigure coordinator did not propose"
for n in r0 r1 r2 r3; do
  wait_for "$WORK2/$n.log" "^EPOCH node=[0-9]+ group=0 epoch=3 op=2 subject=1" \
    10 "$n installing epoch 3 (coordinator r1)"
done
# The client still holds the epoch-1 view: its proposal lands on deposed
# r0, which redirects it to r1 (stale-epoch redirect path).
kv2 put gamma c1 | grep -q "^OK insert" || fail "put via stale-epoch redirect"
say "epoch 3 (coordinator r1) decided; stale-view client served via redirect"

# --- kill the ORIGINAL coordinator, keep serving -------------------------
kill -9 "$(cat "$WORK2/r0.pid")"
say "r0 (original coordinator) SIGKILLed"
kv2new --timeout-ms 15000 put delta d1 | grep -q "^OK insert" \
  || fail "put with original coordinator dead"
kv2new --timeout-ms 15000 get alpha | grep -qF '= "a1"' \
  || fail "get with original coordinator dead"
say "served writes and reads with the original coordinator dead"

# --- restart r0: journal replay must reinstall the decided epochs --------
start_node "$CONFIG4" "$WORK2" r0
wait_for "$WORK2/r0.log" "^RESTART node=0" 10 "r0 restart marker"
wait_for "$WORK2/r0.log" "^RECOVERED node=0" 30 "r0 finishing recovery"
say "r0 recovered"

quiesce "$WORK2" r0 r1 r2 r3

# --- clean shutdown: four-way total-order + epoch agreement --------------
for n in r0 r1 r2 r3; do kill "$(cat "$WORK2/$n.pid")"; done
for n in r0 r1 r2 r3; do
  wait_for "$WORK2/$n.log" "^FINAL" 10 "$n FINAL line (reconf)"
done

grep -h "^FINAL" "$WORK2"/r*.log | sed 's/^/[smoke] /'
hashes=$(grep -h "^FINAL" "$WORK2"/r*.log \
  | grep -oE "order_hash=[0-9a-f]+ store_hash=[0-9a-f]+" | sort -u)
[ "$(echo "$hashes" | wc -l)" = "1" ] \
  || fail "reconf replicas disagree on apply order or content: $hashes"
epochs=$(grep -h "^FINAL" "$WORK2"/r*.log | grep -oE "epoch=[0-9]+" | sort -u)
[ "$epochs" = "epoch=3" ] \
  || fail "replicas ended on different epochs: $(echo $epochs)"
grep "^FINAL node=3" "$WORK2/r3.log" | grep -qE "recoveries=[1-9]" \
  || fail "joiner r3 never ran bootstrap recovery"

say "leg 2 PASS: decided add + coordinator swap survived the original coordinator's death; 4/4 replicas agree on order, content, and epoch"
say "PASS"
