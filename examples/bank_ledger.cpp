// Example: a sharded bank on MRP-Store.
//
// Accounts are range-partitioned across two partitions. Deposits and
// withdrawals are single-partition updates; an auditor periodically runs a
// cross-partition scan through the global ring — atomic multicast orders it
// consistently against all concurrent updates, so the audit always sees a
// consistent database (paper §6.1: sequential consistency, no ad hoc
// cross-partition protocol).
#include <cstdio>

#include "kvstore/deployment.h"

using namespace amcast;

int main() {
  kvstore::KvDeploymentSpec spec;
  spec.partitions = 2;
  spec.replicas_per_partition = 3;
  spec.partitioner = kvstore::Partitioner::range({"acct-5000"});
  spec.global_ring = true;  // cross-partition scans stay ordered
  spec.storage = ringpaxos::StorageOptions::Mode::kMemory;
  spec.lambda = 2000;
  kvstore::KvDeployment d(spec);

  // Open 10,000 accounts with a 512-byte record each.
  d.preload(10000, 512, [](std::uint64_t i) {
    char buf[20];
    std::snprintf(buf, sizeof(buf), "acct-%04llu", (unsigned long long)i);
    return std::string(buf);
  });

  // Tellers: random updates against random accounts (both partitions).
  auto& tellers = d.add_client(8, [](int, Rng& rng) {
    kvstore::Command c;
    c.op = kvstore::Op::kUpdate;
    char buf[20];
    std::snprintf(buf, sizeof(buf), "acct-%04llu",
                  (unsigned long long)rng.next_u64(10000));
    c.key = buf;
    c.value.assign(512, 0);
    return c;
  });

  // Auditor: full-table scans, each one atomically ordered via the global
  // ring against every teller update.
  auto& auditor = d.add_client(
      1,
      [](int, Rng&) {
        kvstore::Command c;
        c.op = kvstore::Op::kScan;
        c.key = "acct-0000";
        c.end_key = "acct-9999";
        return c;
      },
      0, 0, "audit");

  d.sim().run_until(duration::seconds(5));

  auto& m = d.sim().metrics();
  std::printf("tellers: %lld updates (mean %.2f ms)\n",
              (long long)tellers.completed(),
              m.histogram("kv.latency.update").mean_ms());
  std::printf("auditor: %lld consistent full scans (mean %.2f ms)\n",
              (long long)auditor.completed(),
              m.histogram("audit.latency.scan").mean_ms());
  std::printf("partition sizes: %zu + %zu = %zu accounts\n",
              d.replica(0, 0).store().entry_count(),
              d.replica(1, 0).store().entry_count(),
              d.replica(0, 0).store().entry_count() +
                  d.replica(1, 0).store().entry_count());
  bool ok = tellers.completed() > 0 && auditor.completed() > 0 &&
            d.replica(0, 0).store().entry_count() +
                    d.replica(1, 0).store().entry_count() ==
                10000;
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
