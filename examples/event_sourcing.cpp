// Example: event sourcing with dLog.
//
// Two event streams ("orders" and "payments") live in separate logs; a
// cross-stream transaction appends atomically to both via multi-append
// (paper §6.2, Table 2). All replicas agree on every log's contents, and a
// reader can replay any prefix.
#include <cstdio>

#include "dlog/deployment.h"

using namespace amcast;

int main() {
  dlog::DLogDeploymentSpec spec;
  spec.logs = 2;  // log 0 = orders, log 1 = payments
  spec.server_nodes = 3;
  spec.storage = ringpaxos::StorageOptions::Mode::kMemory;
  spec.lambda = 2000;
  dlog::DLogDeployment d(spec);

  // Writers: order events, payment events, and paid-order transactions
  // that must land in both streams atomically.
  auto& writers = d.add_client(6, [](int t, Rng&) {
    dlog::Command c;
    switch (t % 3) {
      case 0:
        c.op = dlog::Op::kAppend;
        c.logs = {0};  // order event
        break;
      case 1:
        c.op = dlog::Op::kAppend;
        c.logs = {1};  // payment event
        break;
      default:
        c.op = dlog::Op::kMultiAppend;
        c.logs = {0, 1};  // paid order: atomically in both streams
        break;
    }
    c.value.assign(256, 0);
    return c;
  });

  // A reader replaying the order stream from the beginning.
  std::int64_t next_read = 0;
  auto& reader = d.add_client(
      1,
      [&next_read](int, Rng&) {
        dlog::Command c;
        c.op = dlog::Op::kRead;
        c.logs = {0};
        c.position = next_read++;
        return c;
      },
      0, "reader");

  d.sim().run_until(duration::seconds(5));
  // Quiesce before comparing replicas: stop issuing and let in-flight
  // instances finish delivering everywhere.
  writers.stop();
  reader.stop();
  d.sim().run_until(duration::seconds(7));

  std::printf("appended: orders log = %lld entries, payments log = %lld\n",
              (long long)d.server(0).log_length(0),
              (long long)d.server(0).log_length(1));
  bool agree = true;
  for (int s = 1; s < d.server_count(); ++s) {
    agree &= d.server(s).log_length(0) == d.server(0).log_length(0);
    agree &= d.server(s).log_length(1) == d.server(0).log_length(1);
  }
  std::printf("replicas agree on both logs: %s\n", agree ? "yes" : "NO");
  std::printf("writers completed %lld commands, reader replayed %lld events\n",
              (long long)writers.completed(), (long long)reader.completed());
  bool ok = agree && writers.completed() > 0 && reader.completed() > 0;
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
