// Quickstart: atomic multicast in ~60 lines.
//
// Builds two multicast groups served by three nodes, subscribes all nodes
// to both groups, multicasts a handful of messages, and shows that every
// subscriber delivers them in the same global order — the atomic multicast
// guarantee (agreement + validity + acyclic order, paper §2).
//
// This file runs the scenario in the simulation backend. The SAME
// scenario as a real cluster — three OS processes over TCP, two rings
// with different coordinators — is examples/cluster.json, served by the
// amcast_noded daemon and driven by the amcast_kv client (see README
// "Running a real cluster"; scripts/runtime_smoke.sh exercises it).
#include <cstdio>
#include <memory>
#include <vector>

#include "core/multicast.h"
#include "sim/simulation.h"

using namespace amcast;

int main() {
  sim::Simulation sim(/*seed=*/1);
  core::ConfigRegistry registry;

  // Three nodes; all of them acceptors and learners of both groups.
  std::vector<core::MulticastNode*> nodes;
  std::vector<ProcessId> ids;
  for (int i = 0; i < 3; ++i) {
    auto n = std::make_unique<core::MulticastNode>(registry);
    nodes.push_back(n.get());
    ids.push_back(sim.add_node(std::move(n)));
  }

  // One ring per multicast group (groups == rings in Multi-Ring Paxos).
  GroupId ga = registry.create_ring(ids, ids, ids[0]);
  GroupId gb = registry.create_ring(ids, ids, ids[1]);

  // Subscribe: rate leveling (delta/lambda) keeps an idle group from
  // stalling the deterministic merge.
  ringpaxos::RingOptions opts;
  opts.lambda = 1000;
  std::vector<std::vector<MessageId>> delivered(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i]->subscribe(ga, opts);
    nodes[i]->subscribe(gb, opts);
    nodes[i]->set_deliver([&delivered, i](GroupId g,
                                          const ringpaxos::ValuePtr& v) {
      delivered[i].push_back(v->msg_id);
      if (i == 0) {
        std::printf("node0 delivered msg %llu from group %d\n",
                    (unsigned long long)v->msg_id, g);
      }
    });
  }

  // Multicast from different nodes to different groups.
  sim.run_until(duration::milliseconds(10));
  for (int k = 0; k < 5; ++k) {
    nodes[0]->multicast(ga, /*payload bytes=*/100);
    nodes[1]->multicast(gb, 100);
    nodes[2]->multicast(k % 2 ? ga : gb, 100);
  }
  sim.run_until(duration::seconds(1));

  bool same = delivered[0] == delivered[1] && delivered[1] == delivered[2];
  std::printf("\nAll 3 subscribers delivered %zu messages in the %s order.\n",
              delivered[0].size(), same ? "SAME" : "DIFFERENT (bug!)");
  return same && delivered[0].size() == 15 ? 0 : 1;
}
