// Example: a geo-replicated store across four EC2-like regions.
//
// One partition per region; clients update their local partition at LAN
// cost while a global ring keeps cross-partition scans strongly consistent
// (paper §8.4.2's deployment as a library user would write it).
#include <cstdio>

#include "common/strings.h"
#include "kvstore/deployment.h"

using namespace amcast;

int main() {
  kvstore::KvDeploymentSpec spec;
  spec.partitions = 4;
  spec.replicas_per_partition = 1;
  spec.dedicated_acceptors = 3;
  spec.partitioner = kvstore::Partitioner::range({"r0~", "r1~", "r2~"});
  spec.global_ring = true;
  spec.storage = ringpaxos::StorageOptions::Mode::kAsyncDisk;
  spec.disk = sim::Presets::ssd();
  spec.delta = duration::milliseconds(20);  // WAN settings (paper §8.2)
  spec.lambda = 2000;
  spec.topology = sim::Topology::ec2_four_regions();
  spec.partition_regions = {0, 1, 2, 3};
  kvstore::KvDeployment d(spec);

  d.preload(4000, 512, [](std::uint64_t i) {
    return str_cat("r", std::to_string(i % 4), "-item", std::to_string(i / 4));
  });

  // A client in every region updating only its local shard.
  std::vector<kvstore::KvClient*> clients;
  for (int r = 0; r < 4; ++r) {
    std::string prefix = str_cat("r", std::to_string(r), "-item");
    clients.push_back(&d.add_client(
        16,
        [prefix](int, Rng& rng) {
          kvstore::Command c;
          c.op = kvstore::Op::kUpdate;
          c.key = prefix + std::to_string(rng.next_u64(1000));
          c.value.assign(512, 0);
          return c;
        },
        r, 0, "region" + std::to_string(r)));
  }
  // Plus one analyst in eu-west running global scans.
  auto& analyst = d.add_client(
      1,
      [](int, Rng&) {
        kvstore::Command c;
        c.op = kvstore::Op::kScan;
        c.key = "r0";
        c.end_key = "r3~~";
        return c;
      },
      0, 0, "analyst");

  d.sim().run_until(duration::seconds(10));

  auto& m = d.sim().metrics();
  std::printf("%-12s %10s %12s\n", "region", "updates", "mean lat ms");
  bool ok = true;
  for (int r = 0; r < 4; ++r) {
    auto& h = m.histogram("region" + std::to_string(r) + ".latency");
    std::printf("%-12s %10lld %12.1f\n",
                d.sim().network().topology().region_name(r).c_str(),
                (long long)clients[std::size_t(r)]->completed(), h.mean_ms());
    ok &= clients[std::size_t(r)]->completed() > 0;
  }
  std::printf("global scans: %lld (mean %.1f ms — one WAN ordering round)\n",
              (long long)analyst.completed(),
              m.histogram("analyst.latency.scan").mean_ms());
  ok &= analyst.completed() > 0;
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
